#include "analysis/rssac002.h"

#include <unordered_set>

namespace clouddns::analysis {

std::vector<Rssac002Day> Rssac002Report(
    const capture::CaptureBuffer& records) {
  struct Accumulator {
    Rssac002Day day;
    std::unordered_set<std::string> sources_v4;
    std::unordered_set<std::string> sources_v6;
    double query_bytes = 0;
    double response_bytes = 0;
  };
  std::map<std::string, Accumulator> days;

  for (const auto& record : records) {
    std::string date = sim::DateString(record.time_us);
    Accumulator& acc = days[date];
    acc.day.date = date;
    ++acc.day.queries;
    ++acc.day.rcode_volume[std::string(ToString(record.rcode))];
    const bool tcp = record.transport == dns::Transport::kTcp;
    const bool v4 = record.src.is_v4();
    (tcp ? acc.day.tcp_queries : acc.day.udp_queries)++;
    (v4 ? acc.day.ipv4_queries : acc.day.ipv6_queries)++;
    if (tcp) {
      (v4 ? acc.day.tcp_ipv4 : acc.day.tcp_ipv6)++;
    } else {
      (v4 ? acc.day.udp_ipv4 : acc.day.udp_ipv6)++;
    }
    (v4 ? acc.sources_v4 : acc.sources_v6).insert(record.src.ToString());
    acc.query_bytes += record.query_size;
    acc.response_bytes += record.response_size;
  }

  std::vector<Rssac002Day> report;
  report.reserve(days.size());
  for (auto& [date, acc] : days) {
    acc.day.unique_sources_ipv4 = acc.sources_v4.size();
    acc.day.unique_sources_ipv6 = acc.sources_v6.size();
    if (acc.day.queries > 0) {
      acc.day.average_query_size =
          acc.query_bytes / static_cast<double>(acc.day.queries);
      acc.day.average_response_size =
          acc.response_bytes / static_cast<double>(acc.day.queries);
    }
    report.push_back(std::move(acc.day));
  }
  return report;
}

std::string RenderRssac002Yaml(const Rssac002Day& day,
                               const std::string& service) {
  std::string out;
  out += "---\n";
  out += "version: rssac002v3\n";
  out += "service: " + service + "\n";
  out += "start-period: " + day.date + "T00:00:00Z\n";
  out += "metric: traffic-volume\n";
  out += "dns-udp-queries-received-ipv4: " + std::to_string(day.udp_ipv4) +
         "\n";
  out += "dns-udp-queries-received-ipv6: " + std::to_string(day.udp_ipv6) +
         "\n";
  out += "dns-tcp-queries-received-ipv4: " + std::to_string(day.tcp_ipv4) +
         "\n";
  out += "dns-tcp-queries-received-ipv6: " + std::to_string(day.tcp_ipv6) +
         "\n";
  out += "---\n";
  out += "metric: rcode-volume\n";
  for (const auto& [rcode, count] : day.rcode_volume) {
    out += rcode + ": " + std::to_string(count) + "\n";
  }
  out += "---\n";
  out += "metric: unique-sources\n";
  out += "num-sources-ipv4: " + std::to_string(day.unique_sources_ipv4) + "\n";
  out += "num-sources-ipv6: " + std::to_string(day.unique_sources_ipv6) + "\n";
  return out;
}

}  // namespace clouddns::analysis
