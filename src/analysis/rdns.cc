#include "analysis/rdns.h"

#include "zone/reverse.h"

namespace clouddns::analysis {

RdnsDatabase::RdnsDatabase(
    const std::vector<std::pair<net::IpAddress, dns::Name>>& ptr_records)
    : v4_zone_(*dns::Name::Parse("in-addr.arpa")),
      v6_zone_(*dns::Name::Parse("ip6.arpa")) {
  for (const auto& [address, target] : ptr_records) {
    dns::Name owner = zone::ReverseName(address);
    zone::Zone& zone = address.is_v4() ? v4_zone_ : v6_zone_;
    zone.Add(dns::MakePtr(owner, target, 3600));
    ++count_;
  }
}

std::optional<dns::Name> RdnsDatabase::Lookup(
    const net::IpAddress& address) const {
  dns::Name owner = zone::ReverseName(address);
  const zone::Zone& zone = address.is_v4() ? v4_zone_ : v6_zone_;
  auto result = zone.Lookup(owner, dns::RrType::kPtr);
  if (result.status != zone::LookupStatus::kAnswer || result.records.empty()) {
    return std::nullopt;
  }
  return std::get<dns::PtrRdata>(result.records.front().rdata).target;
}

std::map<std::string, std::vector<net::IpAddress>>
RdnsDatabase::GroupByPtrName(
    const std::vector<net::IpAddress>& addresses) const {
  std::map<std::string, std::vector<net::IpAddress>> groups;
  for (const auto& address : addresses) {
    if (auto target = Lookup(address)) {
      groups[target->ToKey()].push_back(address);
    }
  }
  return groups;
}

std::optional<std::string> SiteTagFromPtr(const dns::Name& ptr) {
  // "<host>.<site>.<org>.example": the site is the second label after the
  // host, i.e. labels[count-3] counting "example" and the org domain.
  if (ptr.LabelCount() < 4) return std::nullopt;
  return std::string(ptr.Label(ptr.LabelCount() - 3));
}

}  // namespace clouddns::analysis
