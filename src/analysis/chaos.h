// Retry-amplification analysis for fault-injected scenarios.
//
// The Fig. 3b story is mechanistic: when resolution breaks (the .nz
// cyclic-dependency event, or injected packet loss standing in for it),
// resolvers do not send *less* traffic — they retry, fail over and walk
// the NS set, multiplying the upstream query load the authoritatives see.
// This module quantifies that multiplication by comparing a fault-free
// baseline run against a fault-injected run of the same scenario.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/scenario.h"

namespace clouddns::analysis {

/// Amplification of upstream work under faults, relative to a fault-free
/// baseline of the identical scenario configuration.
struct RetryAmplification {
  std::uint64_t baseline_upstream = 0;  ///< Resolver->auth queries, no faults.
  std::uint64_t faulted_upstream = 0;   ///< Same with the fault schedule on.
  std::uint64_t baseline_captured = 0;  ///< Vantage-captured records.
  std::uint64_t faulted_captured = 0;
  /// faulted/baseline ratios (0 when the baseline denominator is zero).
  double upstream_factor = 0.0;
  double captured_factor = 0.0;
  /// The faulted run's robustness totals, for the retry breakdown.
  cloud::RobustnessCounters faulted_counters;
};

[[nodiscard]] RetryAmplification ComputeRetryAmplification(
    const cloud::ScenarioResult& baseline,
    const cloud::ScenarioResult& faulted);

/// One day of the captured-query series, for Fig. 3b style plots of the
/// event's daily shape at the vantage point.
struct ChaosSeriesPoint {
  sim::TimeUs day_start = 0;
  std::uint64_t baseline_captured = 0;
  std::uint64_t faulted_captured = 0;
};

/// Daily captured-query counts of both runs over the scenario window.
[[nodiscard]] std::vector<ChaosSeriesPoint> DailyCaptureSeries(
    const cloud::ScenarioResult& baseline,
    const cloud::ScenarioResult& faulted);

}  // namespace clouddns::analysis
