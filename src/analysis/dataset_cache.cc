#include "analysis/dataset_cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "analysis/context_cache.h"
#include "capture/columnar.h"
#include "capture/sharded.h"

namespace clouddns::analysis {
namespace {

std::uint64_t MixField(std::uint64_t hash, std::uint64_t value) {
  hash ^= value + 0x9e3779b97f4a7c15ull + (hash << 6) + (hash >> 2);
  return hash;
}

}  // namespace

std::string DefaultCacheDir() {
  if (const char* dir = std::getenv("CLOUDDNS_CACHE_DIR")) return dir;
  return "clouddns_cache";
}

std::uint64_t EffectiveQueryBudget(std::uint64_t configured) {
  if (const char* env = std::getenv("CLOUDDNS_QUERIES")) {
    char* end = nullptr;
    unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && value > 0) return value;
  }
  return configured;
}

std::string CacheKey(const cloud::ScenarioConfig& config) {
  // Bump when simulator behaviour changes so stale captures are ignored.
  // v10: sharded parallel scenario engine (per-shard workload substreams).
  constexpr std::uint64_t kSimulatorVersion = 10;
  std::uint64_t hash = 0x434c4f5544444e53ull;  // "CLOUDDNS"
  hash = MixField(hash, kSimulatorVersion);
  // The shard count determines the traffic realization; the thread count
  // deliberately does NOT (any `threads` replays the same simulation), so
  // `config.threads` must never reach this key.
  hash = MixField(hash, config.shards);
  hash = MixField(hash, static_cast<std::uint64_t>(config.vantage));
  hash = MixField(hash, static_cast<std::uint64_t>(config.year));
  hash = MixField(hash, config.client_queries);
  hash = MixField(hash, static_cast<std::uint64_t>(config.zone_scale * 1e9));
  hash = MixField(hash, static_cast<std::uint64_t>(config.fleet_scale * 1e9));
  hash = MixField(hash, static_cast<std::uint64_t>(config.as_scale * 1e9));
  hash = MixField(hash, config.seed);
  hash = MixField(hash, static_cast<std::uint64_t>(config.warmup_fraction * 1e9));
  hash = MixField(hash, static_cast<std::uint64_t>(config.diurnal_amplitude * 1e9));
  hash = MixField(hash, static_cast<std::uint64_t>(config.consolidation_factor * 1e9));
  hash = MixField(hash, config.window_start.value_or(0));
  hash = MixField(hash, config.window_end.value_or(0));
  hash = MixField(hash, (config.google_only ? 1u : 0u) |
                            (config.inject_cyclic_event ? 2u : 0u) |
                            (config.qmin_override_off ? 4u : 0u) |
                            (config.rrl_override_off ? 8u : 0u));
  // Fault schedules change the traffic realization, so they are part of
  // the key — but only when actually present, which keeps every fault-free
  // key (and all previously cached fault-free captures) unchanged.
  if (config.fault_preset != cloud::FaultPreset::kNone ||
      !config.faults.empty()) {
    hash = MixField(hash, 0x4641554c54ull);  // "FAULT"
    hash = MixField(hash, static_cast<std::uint64_t>(config.fault_preset));
    hash = MixField(hash, sim::HashFaultPlan(config.faults));
  }

  std::string vantage = config.vantage == cloud::Vantage::kNl
                            ? "nl"
                            : (config.vantage == cloud::Vantage::kNz ? "nz"
                                                                     : "root");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s_%d_%016llx", vantage.c_str(), config.year,
                static_cast<unsigned long long>(hash));
  return buf;
}

namespace {

/// A corruption code (vs kOk / kNotFound): the artifact exists but failed
/// an integrity check and must be quarantined, never re-read.
bool IsCorruption(const base::io::IoStatus& status) {
  return !status.ok() && status.code != base::io::IoCode::kNotFound;
}

/// Structured recovery event, one line per integrity failure. Content is
/// a pure function of the artifact state (no timestamps — the wall-clock
/// determinism contract holds even for diagnostics).
void LogRecoveryEvent(const char* artifact, const std::string& path,
                      const base::io::IoStatus& status,
                      const std::string& quarantined_to) {
  std::fprintf(stderr,
               "[storage-recovery] artifact=%s path=%s error=%s "
               "quarantined=%s action=rebuild-from-simulation\n",
               artifact, path.c_str(), status.ToString().c_str(),
               quarantined_to.empty() ? "(removed)" : quarantined_to.c_str());
}

/// Quarantines a corrupt artifact and updates the counters.
void QuarantineCorrupt(const char* artifact, const std::string& path,
                       const base::io::IoStatus& status,
                       base::io::StorageCounters& storage) {
  ++storage.detected;
  const std::string moved = base::io::QuarantineFile(
      path, std::string(artifact) + " failed integrity check: " +
                status.ToString());
  if (!moved.empty()) ++storage.quarantined;
  LogRecoveryEvent(artifact, path, status, moved);
}

}  // namespace

cloud::ScenarioResult LoadOrRun(cloud::ScenarioConfig config,
                                const std::string& cache_dir) {
  config.client_queries = EffectiveQueryBudget(config.client_queries);
  if (cache_dir.empty()) return cloud::RunScenario(config);

  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);

  base::io::StorageCounters storage;
  // Sweep temp files stranded by a crashed prior writer; they are never
  // valid artifacts (a completed write renames its temp away).
  storage.tmp_cleaned = static_cast<std::uint64_t>(
      base::io::RemoveStrandedTmpFiles(cache_dir));

  const std::string key = CacheKey(config);
  const std::string path = cache_dir + "/" + key + ".cdns";
  const std::string context_path = cache_dir + "/" + key + ".ctx";

  // Shard-structure sidecar: the `.cdns` capture stays the flat,
  // merge-ordered stream it always was (byte-identical across versions);
  // the `.shards` file records each record's shard in merge order so a
  // warm load can rebuild the exact sharded view the simulation produced
  // and analytics can keep scanning shard-wise. Missing sidecar (older
  // caches) degrades to a single-shard view with identical results.
  const std::string shard_path = cache_dir + "/" + key + ".shards";

  // ---- Load phase: verify every artifact, quarantine what fails. ------
  capture::CaptureBuffer cached;
  base::io::IoStatus capture_status =
      capture::ReadCaptureFileStatus(path, cached);
  if (IsCorruption(capture_status)) {
    QuarantineCorrupt("capture", path, capture_status, storage);
  }

  bool capture_rebuilt = false;
  bool shards_rebuilt = false;
  if (capture_status.ok()) {
    base::io::IoStatus shard_status;
    capture::ShardedCapture records =
        capture::ReshardFromIndex(shard_path, std::move(cached),
                                  &shard_status);
    if (IsCorruption(shard_status)) {
      // The shard structure is only reproducible from simulation, so a
      // corrupt sidecar forces the full cold rebuild below. The capture
      // file itself is intact — it is rewritten (not counted as rebuilt)
      // purely as a side effect of the uniform cold path.
      QuarantineCorrupt("shard-index", shard_path, shard_status, storage);
      shards_rebuilt = true;
    } else {
      // Warm path: the context sidecar restores the AS database, PTR
      // records and server metadata directly — no simulation at all.
      cloud::ScenarioResult result;
      base::io::IoStatus context_status =
          LoadScenarioContextStatus(context_path, result);
      if (!context_status.ok()) {
        if (IsCorruption(context_status)) {
          QuarantineCorrupt("context", context_path, context_status, storage);
        }
        // Missing or quarantined sidecar: rebuild the deterministic
        // context with a zero-query run, then persist it so the next
        // load skips this.
        cloud::ScenarioConfig dry = config;
        dry.client_queries = 0;
        result = cloud::RunScenario(dry);
        if (SaveScenarioContextStatus(context_path, result).ok() &&
            IsCorruption(context_status)) {
          ++storage.rebuilt;
          cloud::ScenarioResult reread;
          if (LoadScenarioContextStatus(context_path, reread).ok()) {
            ++storage.reverified;
          }
        }
      }
      result.config = config;
      result.records = std::move(records);
      result.storage = storage;
      return result;
    }
  }
  capture_rebuilt = IsCorruption(capture_status);

  // ---- Cold rebuild: run the simulation and rewrite every artifact. ---
  cloud::ScenarioResult result = cloud::RunScenario(config);
  result.config = config;
  // FlattenCopy: write the merge-ordered stream without leaving a second
  // full copy memoized inside the sharded view.
  if (capture::WriteCaptureFileStatus(path, result.records.FlattenCopy())
          .ok()) {
    if (capture_rebuilt) {
      ++storage.rebuilt;
      std::vector<std::uint8_t> payload;
      if (base::io::ReadFramedFile(path, base::io::kTagCapture, payload)
              .ok()) {
        ++storage.reverified;
      }
    }
    (void)SaveScenarioContextStatus(context_path, result);
    if (capture::WriteShardIndexStatus(shard_path, result.records).ok()) {
      if (shards_rebuilt) {
        ++storage.rebuilt;
        std::vector<std::uint8_t> payload;
        if (base::io::ReadFramedFile(shard_path, base::io::kTagShards,
                                     payload)
                .ok()) {
          ++storage.reverified;
        }
      }
    }
  }
  result.storage = storage;
  return result;
}

}  // namespace clouddns::analysis
