#include "analysis/dataset_cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "analysis/context_cache.h"
#include "capture/columnar.h"
#include "capture/sharded.h"

namespace clouddns::analysis {
namespace {

std::uint64_t MixField(std::uint64_t hash, std::uint64_t value) {
  hash ^= value + 0x9e3779b97f4a7c15ull + (hash << 6) + (hash >> 2);
  return hash;
}

}  // namespace

std::string DefaultCacheDir() {
  if (const char* dir = std::getenv("CLOUDDNS_CACHE_DIR")) return dir;
  return "clouddns_cache";
}

std::uint64_t EffectiveQueryBudget(std::uint64_t configured) {
  if (const char* env = std::getenv("CLOUDDNS_QUERIES")) {
    char* end = nullptr;
    unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && value > 0) return value;
  }
  return configured;
}

std::string CacheKey(const cloud::ScenarioConfig& config) {
  // Bump when simulator behaviour changes so stale captures are ignored.
  // v10: sharded parallel scenario engine (per-shard workload substreams).
  constexpr std::uint64_t kSimulatorVersion = 10;
  std::uint64_t hash = 0x434c4f5544444e53ull;  // "CLOUDDNS"
  hash = MixField(hash, kSimulatorVersion);
  // The shard count determines the traffic realization; the thread count
  // deliberately does NOT (any `threads` replays the same simulation), so
  // `config.threads` must never reach this key.
  hash = MixField(hash, config.shards);
  hash = MixField(hash, static_cast<std::uint64_t>(config.vantage));
  hash = MixField(hash, static_cast<std::uint64_t>(config.year));
  hash = MixField(hash, config.client_queries);
  hash = MixField(hash, static_cast<std::uint64_t>(config.zone_scale * 1e9));
  hash = MixField(hash, static_cast<std::uint64_t>(config.fleet_scale * 1e9));
  hash = MixField(hash, static_cast<std::uint64_t>(config.as_scale * 1e9));
  hash = MixField(hash, config.seed);
  hash = MixField(hash, static_cast<std::uint64_t>(config.warmup_fraction * 1e9));
  hash = MixField(hash, static_cast<std::uint64_t>(config.diurnal_amplitude * 1e9));
  hash = MixField(hash, static_cast<std::uint64_t>(config.consolidation_factor * 1e9));
  hash = MixField(hash, config.window_start.value_or(0));
  hash = MixField(hash, config.window_end.value_or(0));
  hash = MixField(hash, (config.google_only ? 1u : 0u) |
                            (config.inject_cyclic_event ? 2u : 0u) |
                            (config.qmin_override_off ? 4u : 0u) |
                            (config.rrl_override_off ? 8u : 0u));
  // Fault schedules change the traffic realization, so they are part of
  // the key — but only when actually present, which keeps every fault-free
  // key (and all previously cached fault-free captures) unchanged.
  if (config.fault_preset != cloud::FaultPreset::kNone ||
      !config.faults.empty()) {
    hash = MixField(hash, 0x4641554c54ull);  // "FAULT"
    hash = MixField(hash, static_cast<std::uint64_t>(config.fault_preset));
    hash = MixField(hash, sim::HashFaultPlan(config.faults));
  }

  std::string vantage = config.vantage == cloud::Vantage::kNl
                            ? "nl"
                            : (config.vantage == cloud::Vantage::kNz ? "nz"
                                                                     : "root");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s_%d_%016llx", vantage.c_str(), config.year,
                static_cast<unsigned long long>(hash));
  return buf;
}

cloud::ScenarioResult LoadOrRun(cloud::ScenarioConfig config,
                                const std::string& cache_dir) {
  config.client_queries = EffectiveQueryBudget(config.client_queries);
  if (cache_dir.empty()) return cloud::RunScenario(config);

  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  const std::string path =
      cache_dir + "/" + CacheKey(config) + ".cdns";

  const std::string context_path =
      cache_dir + "/" + CacheKey(config) + ".ctx";

  // Shard-structure sidecar: the `.cdns` capture stays the flat,
  // merge-ordered stream it always was (byte-identical across versions);
  // the `.shards` file records each record's shard in merge order so a
  // warm load can rebuild the exact sharded view the simulation produced
  // and analytics can keep scanning shard-wise. Missing sidecar (older
  // caches) degrades to a single-shard view with identical results.
  const std::string shard_path =
      cache_dir + "/" + CacheKey(config) + ".shards";

  if (auto cached = capture::ReadCaptureFile(path)) {
    // Fast path: the context sidecar restores the AS database, PTR
    // records and server metadata directly — no simulation at all.
    cloud::ScenarioResult result;
    if (LoadScenarioContext(context_path, result)) {
      result.config = config;
      result.records = capture::ReshardFromIndex(shard_path,
                                                 std::move(*cached));
      return result;
    }
    // No (or stale) sidecar: rebuild the deterministic context by running
    // a zero-query scenario, then persist it so the next load skips this.
    cloud::ScenarioConfig dry = config;
    dry.client_queries = 0;
    result = cloud::RunScenario(dry);
    result.config = config;
    SaveScenarioContext(context_path, result);
    result.records = capture::ReshardFromIndex(shard_path,
                                               std::move(*cached));
    return result;
  }

  cloud::ScenarioResult result = cloud::RunScenario(config);
  // FlattenCopy: write the merge-ordered stream without leaving a second
  // full copy memoized inside the sharded view.
  if (!capture::WriteCaptureFile(path, result.records.FlattenCopy())) {
    std::remove(path.c_str());
  } else {
    SaveScenarioContext(context_path, result);
    if (!capture::WriteShardIndex(shard_path, result.records)) {
      std::remove(shard_path.c_str());
    }
  }
  return result;
}

}  // namespace clouddns::analysis
