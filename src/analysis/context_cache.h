// Sidecar persistence for the non-capture half of a ScenarioResult.
//
// A dataset-cache hit used to re-run the whole scenario with zero client
// queries just to rebuild deterministic context — zones, the AS database,
// PTR records — which cost ~0.6s per dataset and dominated every warm
// bench. The sidecar stores that context (everything in ScenarioResult
// except `records` and `config`) next to the capture file, so a warm load
// is a pure read: capture + context, no simulation at all.
//
// The format is a version-tagged text file; loading a file with a
// different version or any malformed section fails cleanly, and callers
// fall back to the dry-rebuild path (which re-writes the sidecar).
//
// On disk the text payload rides inside the base::io checksummed frame
// (tag kTagContext) and is landed with write-to-temp + fsync + atomic
// rename; legacy unframed text sidecars still load.
#pragma once

#include <string>

#include "base/io.h"
#include "cloud/scenario.h"

namespace clouddns::analysis {

/// Writes everything but `records`/`config` to `path`, framed and
/// atomically renamed into place.
[[nodiscard]] base::io::IoStatus SaveScenarioContextStatus(
    const std::string& path, const cloud::ScenarioResult& result);

/// Restores the context fields into `result`, leaving `records` and
/// `config` untouched. kNotFound when missing; a corruption code when the
/// frame or the text payload is damaged or version-mismatched.
[[nodiscard]] base::io::IoStatus LoadScenarioContextStatus(
    const std::string& path, cloud::ScenarioResult& result);

/// Untyped wrappers kept for callers that only need success/failure.
bool SaveScenarioContext(const std::string& path,
                         const cloud::ScenarioResult& result);
bool LoadScenarioContext(const std::string& path,
                         cloud::ScenarioResult& result);

}  // namespace clouddns::analysis
