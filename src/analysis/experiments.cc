#include "analysis/experiments.h"

#include <algorithm>
#include <unordered_map>

#include "analysis/rdns.h"
#include "entrada/cdf.h"
#include "entrada/hll.h"

namespace clouddns::analysis {
namespace {

constexpr std::uint16_t TagOf(cloud::Provider provider) {
  return static_cast<std::uint16_t>(provider);
}

}  // namespace

cloud::Provider ProviderOfRecord(const cloud::ScenarioResult& result,
                                 const capture::CaptureRecord& record) {
  auto asn = result.asdb.OriginAs(record.src);
  return asn ? cloud::ProviderOfAsn(*asn) : cloud::Provider::kOther;
}

entrada::Filter FilterProvider(const cloud::ScenarioResult& result,
                               cloud::Provider provider) {
  return [&result, provider](const capture::CaptureRecord& record) {
    return ProviderOfRecord(result, record) == provider;
  };
}

entrada::TagFn ProviderTag(const cloud::ScenarioResult& result) {
  std::unordered_map<net::Asn, std::uint16_t> by_asn;
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    for (net::Asn asn : cloud::NetworkOf(provider).ases) {
      by_asn.emplace(asn, TagOf(provider));
    }
  }
  return [&asdb = result.asdb,
          by_asn = std::move(by_asn)](const capture::CaptureRecord& record) {
    auto asn = asdb.OriginAs(record.src);
    if (!asn) return TagOf(cloud::Provider::kOther);
    auto it = by_asn.find(*asn);
    return it == by_asn.end() ? TagOf(cloud::Provider::kOther) : it->second;
  };
}

entrada::AsnTagFn ProviderAsnTag() {
  std::unordered_map<net::Asn, std::uint16_t> by_asn;
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    for (net::Asn asn : cloud::NetworkOf(provider).ases) {
      by_asn.emplace(asn, TagOf(provider));
    }
  }
  return [by_asn = std::move(by_asn)](std::optional<net::Asn> asn) {
    if (!asn) return TagOf(cloud::Provider::kOther);
    auto it = by_asn.find(*asn);
    return it == by_asn.end() ? TagOf(cloud::Provider::kOther) : it->second;
  };
}

entrada::TagNamer ProviderTagNamer() {
  return [](std::uint16_t tag) {
    return std::string(ToString(static_cast<cloud::Provider>(tag)));
  };
}

DatasetStats ComputeDatasetStats(const cloud::ScenarioResult& result) {
  // One fused pass instead of five scans (valid count, two exact distinct
  // passes, two HLL passes).
  entrada::AnalysisPlan plan;
  plan.SetAsDatabase(result.asdb);
  auto valid = plan.Count(entrada::FilterSpec::Valid());
  auto resolvers = plan.Distinct(entrada::FilterSpec::All(),
                                 entrada::KeySpec::SrcAddress());
  auto resolvers_hll = plan.Sketch(entrada::FilterSpec::All(),
                                   entrada::KeySpec::SrcAddress());
  auto ases = plan.Distinct(entrada::FilterSpec::All(),
                            entrada::KeySpec::SrcAs());
  auto ases_hll = plan.Sketch(entrada::FilterSpec::All(),
                              entrada::KeySpec::SrcAs());
  plan.Execute(result.records);

  DatasetStats stats;
  stats.queries_total = result.records.size();
  stats.queries_valid = plan.CountResult(valid);
  stats.resolvers_exact = plan.DistinctResult(resolvers);
  stats.resolvers_hll = plan.SketchResult(resolvers_hll).Estimate();
  stats.ases_exact = plan.DistinctResult(ases);
  stats.ases_hll = plan.SketchResult(ases_hll).Estimate();
  return stats;
}

std::vector<ProviderShare> ComputeCloudShares(
    const cloud::ScenarioResult& result) {
  // One tag-grouped pass replaces a CountIf scan per provider.
  entrada::AnalysisPlan plan;
  plan.SetAsDatabase(result.asdb);
  plan.SetAsnTag(ProviderAsnTag(), ProviderTagNamer());
  auto by_provider =
      plan.GroupBy(entrada::FilterSpec::All(), entrada::KeySpec::Tag());
  plan.Execute(result.records);
  const entrada::Aggregation& agg = plan.GroupResult(by_provider);

  std::vector<ProviderShare> shares;
  const double total = static_cast<double>(result.records.size());
  std::uint64_t cp_sum = 0;
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    ProviderShare share;
    share.provider = provider;
    share.queries = agg.Of(std::string(ToString(provider)));
    share.share = total == 0 ? 0 : static_cast<double>(share.queries) / total;
    cp_sum += share.queries;
    shares.push_back(share);
  }
  ProviderShare combined;
  combined.provider = cloud::Provider::kOther;  // stands for "all 5 CPs"
  combined.queries = cp_sum;
  combined.share = total == 0 ? 0 : static_cast<double>(cp_sum) / total;
  shares.push_back(combined);
  return shares;
}

GoogleSplit ComputeGoogleSplit(const cloud::ScenarioResult& result) {
  entrada::AnalysisPlan plan;
  plan.SetAsDatabase(result.asdb);
  plan.SetAsnTag(ProviderAsnTag(), ProviderTagNamer());
  auto is_public = [&result](const capture::CaptureRecord& record) {
    return result.google_public.Lookup(record.src).value_or(false);
  };
  entrada::FilterSpec google =
      entrada::FilterSpec::Tagged(TagOf(cloud::Provider::kGoogle));
  entrada::FilterSpec google_public = google;
  google_public.custom = is_public;

  auto queries = plan.Count(google);
  auto queries_public = plan.Count(google_public);
  auto resolvers = plan.Distinct(google, entrada::KeySpec::SrcAddress());
  auto resolvers_public =
      plan.Distinct(google_public, entrada::KeySpec::SrcAddress());
  plan.Execute(result.records);

  GoogleSplit split;
  split.queries_total = plan.CountResult(queries);
  split.queries_public = plan.CountResult(queries_public);
  split.resolvers_total = plan.DistinctResult(resolvers);
  split.resolvers_public = plan.DistinctResult(resolvers_public);
  return split;
}

namespace {

std::map<std::string, double> MixFromAggregation(
    const entrada::Aggregation& agg) {
  std::map<std::string, double> mix;
  static const char* kCategories[] = {"A", "AAAA", "NS", "DS", "DNSKEY", "MX"};
  std::uint64_t categorized = 0;
  for (const char* category : kCategories) {
    std::uint64_t count = agg.Of(category);
    mix[category] = agg.total == 0
                        ? 0
                        : static_cast<double>(count) /
                              static_cast<double>(agg.total);
    categorized += count;
  }
  mix["OTHER"] = agg.total == 0
                     ? 0
                     : static_cast<double>(agg.total - categorized) /
                           static_cast<double>(agg.total);
  return mix;
}

}  // namespace

std::map<std::string, double> ComputeRrTypeMix(
    const cloud::ScenarioResult& result, cloud::Provider provider) {
  auto agg = entrada::CountBy(result.records, entrada::KeyQtype(),
                              FilterProvider(result, provider));
  return MixFromAggregation(agg);
}

std::map<cloud::Provider, std::map<std::string, double>> ComputeRrTypeMixes(
    const cloud::ScenarioResult& result) {
  entrada::AnalysisPlan plan;
  plan.SetAsDatabase(result.asdb);
  plan.SetAsnTag(ProviderAsnTag(), ProviderTagNamer());
  std::map<cloud::Provider, entrada::AnalysisPlan::Handle> handles;
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    handles[provider] = plan.GroupBy(
        entrada::FilterSpec::Tagged(TagOf(provider)),
        entrada::KeySpec::Qtype());
  }
  plan.Execute(result.records);

  std::map<cloud::Provider, std::map<std::string, double>> mixes;
  for (const auto& [provider, handle] : handles) {
    mixes[provider] = MixFromAggregation(plan.GroupResult(handle));
  }
  return mixes;
}

std::vector<MonthlyQtypeRow> ComputeMonthlyQtypes(
    const cloud::ScenarioResult& result, cloud::Provider provider) {
  entrada::AnalysisPlan plan;
  plan.SetAsDatabase(result.asdb);
  plan.SetAsnTag(ProviderAsnTag(), ProviderTagNamer());
  auto months_handle = plan.GroupByMonth(
      entrada::FilterSpec::Tagged(TagOf(provider)), entrada::KeySpec::Qtype());
  plan.Execute(result.records);

  std::vector<MonthlyQtypeRow> rows;
  for (const auto& [month, agg] : plan.MonthResult(months_handle)) {
    MonthlyQtypeRow row;
    row.month = month;
    row.total = agg.total;
    for (const auto& [qtype, count] : agg.counts) {
      row.qtype_share[qtype] =
          static_cast<double>(count) / static_cast<double>(agg.total);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

double ComputeJunkRatio(const cloud::ScenarioResult& result,
                        std::optional<cloud::Provider> provider) {
  entrada::Filter filter =
      provider ? FilterProvider(result, *provider) : entrada::Filter{};
  std::uint64_t total = entrada::CountIf(result.records, filter);
  std::uint64_t junk = entrada::CountIf(
      result.records, entrada::And(filter, entrada::FilterJunk()));
  return total == 0 ? 0 : static_cast<double>(junk) / static_cast<double>(total);
}

JunkRatios ComputeJunkRatios(const cloud::ScenarioResult& result) {
  // Two tag-grouped aggregates in one pass replace 2 scans per provider
  // plus 2 for the overall ratio.
  entrada::AnalysisPlan plan;
  plan.SetAsDatabase(result.asdb);
  plan.SetAsnTag(ProviderAsnTag(), ProviderTagNamer());
  auto all = plan.GroupBy(entrada::FilterSpec::All(), entrada::KeySpec::Tag());
  auto junk =
      plan.GroupBy(entrada::FilterSpec::Junk(), entrada::KeySpec::Tag());
  plan.Execute(result.records);
  const entrada::Aggregation& totals = plan.GroupResult(all);
  const entrada::Aggregation& junks = plan.GroupResult(junk);

  JunkRatios ratios;
  ratios.overall = totals.total == 0
                       ? 0
                       : static_cast<double>(junks.total) /
                             static_cast<double>(totals.total);
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    std::string key(ToString(provider));
    std::uint64_t total = totals.Of(key);
    ratios.per_provider[provider] =
        total == 0 ? 0
                   : static_cast<double>(junks.Of(key)) /
                         static_cast<double>(total);
  }
  return ratios;
}

TransportMix ComputeTransportMix(const cloud::ScenarioResult& result,
                                 cloud::Provider provider) {
  TransportMix mix;
  for (const auto& record : result.records) {
    if (ProviderOfRecord(result, record) != provider) continue;
    ++mix.total;
    if (record.src.is_v6()) {
      mix.ipv6 += 1;
    } else {
      mix.ipv4 += 1;
    }
    if (record.transport == dns::Transport::kTcp) {
      mix.tcp += 1;
    } else {
      mix.udp += 1;
    }
  }
  if (mix.total > 0) {
    double total = static_cast<double>(mix.total);
    mix.ipv4 /= total;
    mix.ipv6 /= total;
    mix.udp /= total;
    mix.tcp /= total;
  }
  return mix;
}

std::map<cloud::Provider, TransportMix> ComputeTransportMixes(
    const cloud::ScenarioResult& result) {
  // Four tag-grouped aggregates in one pass replace a full scan per
  // provider.
  entrada::AnalysisPlan plan;
  plan.SetAsDatabase(result.asdb);
  plan.SetAsnTag(ProviderAsnTag(), ProviderTagNamer());
  auto v4 = plan.GroupBy(entrada::FilterSpec::V4(), entrada::KeySpec::Tag());
  auto v6 = plan.GroupBy(entrada::FilterSpec::V6(), entrada::KeySpec::Tag());
  auto udp = plan.GroupBy(entrada::FilterSpec::Udp(), entrada::KeySpec::Tag());
  auto tcp = plan.GroupBy(entrada::FilterSpec::Tcp(), entrada::KeySpec::Tag());
  plan.Execute(result.records);

  std::map<cloud::Provider, TransportMix> mixes;
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    std::string key(ToString(provider));
    TransportMix mix;
    std::uint64_t n_v4 = plan.GroupResult(v4).Of(key);
    std::uint64_t n_v6 = plan.GroupResult(v6).Of(key);
    std::uint64_t n_udp = plan.GroupResult(udp).Of(key);
    std::uint64_t n_tcp = plan.GroupResult(tcp).Of(key);
    mix.total = n_v4 + n_v6;
    if (mix.total > 0) {
      double total = static_cast<double>(mix.total);
      mix.ipv4 = static_cast<double>(n_v4) / total;
      mix.ipv6 = static_cast<double>(n_v6) / total;
      mix.udp = static_cast<double>(n_udp) / total;
      mix.tcp = static_cast<double>(n_tcp) / total;
    }
    mixes[provider] = mix;
  }
  return mixes;
}

ResolverFamilyCount ComputeResolverFamilies(const cloud::ScenarioResult& result,
                                            cloud::Provider provider) {
  // One pass for both families instead of two filtered distinct scans.
  entrada::AnalysisPlan plan;
  plan.SetAsDatabase(result.asdb);
  plan.SetAsnTag(ProviderAsnTag(), ProviderTagNamer());
  entrada::FilterSpec tagged = entrada::FilterSpec::Tagged(TagOf(provider));
  entrada::FilterSpec tagged_v4 = tagged;
  tagged_v4.kind = entrada::FilterSpec::Kind::kV4;
  auto total = plan.Distinct(tagged, entrada::KeySpec::SrcAddress());
  auto v4 = plan.Distinct(tagged_v4, entrada::KeySpec::SrcAddress());
  plan.Execute(result.records);

  ResolverFamilyCount count;
  count.total = plan.DistinctResult(total);
  count.v4 = plan.DistinctResult(v4);
  count.v6 = count.total - count.v4;
  return count;
}

std::vector<FacebookSiteStats> ComputeFacebookSites(
    const cloud::ScenarioResult& result, std::uint32_t server_id) {
  RdnsDatabase rdns(result.ptr_records);

  struct SiteAccumulator {
    std::uint64_t queries = 0;
    std::uint64_t v6 = 0;
    std::vector<double> tcp_rtt_v4_ms;
    std::vector<double> tcp_rtt_v6_ms;
  };
  std::map<std::string, SiteAccumulator> sites;
  std::vector<net::IpAddress> facebook_sources;

  for (const auto& record : result.records) {
    if (record.server_id != server_id) continue;
    if (ProviderOfRecord(result, record) != cloud::Provider::kFacebook) {
      continue;
    }
    auto ptr = rdns.Lookup(record.src);
    if (!ptr) continue;  // the paper saw 3 addresses with no PTR
    auto site = SiteTagFromPtr(*ptr);
    if (!site) continue;
    SiteAccumulator& acc = sites[*site];
    ++acc.queries;
    acc.v6 += record.src.is_v6();
    if (record.transport == dns::Transport::kTcp &&
        record.tcp_handshake_rtt_us > 0) {
      double ms = static_cast<double>(record.tcp_handshake_rtt_us) / 1000.0;
      (record.src.is_v6() ? acc.tcp_rtt_v6_ms : acc.tcp_rtt_v4_ms)
          .push_back(ms);
    }
    facebook_sources.push_back(record.src);
  }

  // Dual-stack identification: group observed sources by PTR name; a name
  // seen from both families is one dual-stack host.
  auto groups = rdns.GroupByPtrName(facebook_sources);
  std::map<std::string, std::size_t> dual_per_site;
  for (const auto& [name, addresses] : groups) {
    bool v4 = false, v6 = false;
    for (const auto& address : addresses) {
      (address.is_v4() ? v4 : v6) = true;
    }
    if (v4 && v6) {
      auto parsed = dns::Name::Parse(name);
      if (parsed) {
        if (auto site = SiteTagFromPtr(*parsed)) ++dual_per_site[*site];
      }
    }
  }

  std::vector<FacebookSiteStats> stats;
  for (auto& [site, acc] : sites) {
    FacebookSiteStats row;
    row.site = site;
    row.queries = acc.queries;
    row.v6_share = acc.queries == 0
                       ? 0
                       : static_cast<double>(acc.v6) /
                             static_cast<double>(acc.queries);
    auto median = [](std::vector<double>& values) -> std::optional<double> {
      if (values.empty()) return std::nullopt;
      entrada::Cdf cdf;
      for (double v : values) cdf.Add(v);
      return cdf.Median();
    };
    row.median_rtt_v4_ms = median(acc.tcp_rtt_v4_ms);
    row.median_rtt_v6_ms = median(acc.tcp_rtt_v6_ms);
    row.dual_stack_hosts = dual_per_site[site];
    stats.push_back(std::move(row));
  }
  std::sort(stats.begin(), stats.end(),
            [](const FacebookSiteStats& a, const FacebookSiteStats& b) {
              return a.queries > b.queries;
            });
  return stats;
}

EdnsStats ComputeEdnsStats(const cloud::ScenarioResult& result,
                           cloud::Provider provider) {
  // CDF + UDP + truncation aggregates in one pass instead of three scans.
  entrada::AnalysisPlan plan;
  plan.SetAsDatabase(result.asdb);
  plan.SetAsnTag(ProviderAsnTag(), ProviderTagNamer());
  entrada::FilterSpec udp_tagged =
      entrada::FilterSpec::Tagged(TagOf(provider));
  udp_tagged.kind = entrada::FilterSpec::Kind::kUdp;
  entrada::FilterSpec udp_with_edns = udp_tagged;
  udp_with_edns.custom = [](const capture::CaptureRecord& r) {
    return r.has_edns;
  };
  entrada::FilterSpec udp_truncated = udp_tagged;
  udp_truncated.custom = [](const capture::CaptureRecord& r) { return r.tc; };

  auto sizes = plan.Collect(
      udp_with_edns,
      [](const capture::CaptureRecord& r) -> std::optional<double> {
        return static_cast<double>(r.edns_udp_size);
      });
  auto udp = plan.Count(udp_tagged);
  auto truncated = plan.Count(udp_truncated);
  plan.Execute(result.records);

  EdnsStats stats;
  entrada::Cdf& cdf = plan.CdfResult(sizes);
  stats.fraction_at_512 = cdf.FractionAtOrBelow(512);
  stats.fraction_up_to_1232 = cdf.FractionAtOrBelow(1232);
  stats.cdf = cdf.Curve();
  std::uint64_t udp_count = plan.CountResult(udp);
  stats.truncated_udp =
      udp_count == 0 ? 0
                     : static_cast<double>(plan.CountResult(truncated)) /
                           static_cast<double>(udp_count);
  return stats;
}

}  // namespace clouddns::analysis
