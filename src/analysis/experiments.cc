#include "analysis/experiments.h"

#include <algorithm>

#include "analysis/rdns.h"
#include "entrada/cdf.h"
#include "entrada/hll.h"

namespace clouddns::analysis {
namespace {

entrada::KeyFn KeyProviderless() {
  return entrada::KeySrcAddress();
}

}  // namespace

cloud::Provider ProviderOfRecord(const cloud::ScenarioResult& result,
                                 const capture::CaptureRecord& record) {
  auto asn = result.asdb.OriginAs(record.src);
  return asn ? cloud::ProviderOfAsn(*asn) : cloud::Provider::kOther;
}

entrada::Filter FilterProvider(const cloud::ScenarioResult& result,
                               cloud::Provider provider) {
  return [&result, provider](const capture::CaptureRecord& record) {
    return ProviderOfRecord(result, record) == provider;
  };
}

DatasetStats ComputeDatasetStats(const cloud::ScenarioResult& result) {
  DatasetStats stats;
  stats.queries_total = result.records.size();
  stats.queries_valid =
      entrada::CountIf(result.records, entrada::FilterValid());
  stats.resolvers_exact =
      entrada::DistinctExact(result.records, KeyProviderless());
  stats.resolvers_hll =
      entrada::DistinctSketch(result.records, KeyProviderless()).Estimate();
  auto as_key = entrada::KeySrcAs(result.asdb);
  stats.ases_exact = entrada::DistinctExact(result.records, as_key);
  stats.ases_hll =
      entrada::DistinctSketch(result.records, as_key).Estimate();
  return stats;
}

std::vector<ProviderShare> ComputeCloudShares(
    const cloud::ScenarioResult& result) {
  std::vector<ProviderShare> shares;
  const double total = static_cast<double>(result.records.size());
  std::uint64_t cp_sum = 0;
  for (cloud::Provider provider : cloud::MeasuredProviders()) {
    ProviderShare share;
    share.provider = provider;
    share.queries =
        entrada::CountIf(result.records, FilterProvider(result, provider));
    share.share = total == 0 ? 0 : static_cast<double>(share.queries) / total;
    cp_sum += share.queries;
    shares.push_back(share);
  }
  ProviderShare combined;
  combined.provider = cloud::Provider::kOther;  // stands for "all 5 CPs"
  combined.queries = cp_sum;
  combined.share = total == 0 ? 0 : static_cast<double>(cp_sum) / total;
  shares.push_back(combined);
  return shares;
}

GoogleSplit ComputeGoogleSplit(const cloud::ScenarioResult& result) {
  GoogleSplit split;
  auto google = FilterProvider(result, cloud::Provider::kGoogle);
  auto is_public = [&result](const capture::CaptureRecord& record) {
    return result.google_public.Lookup(record.src).value_or(false);
  };
  split.queries_total = entrada::CountIf(result.records, google);
  split.queries_public =
      entrada::CountIf(result.records, entrada::And(google, is_public));
  split.resolvers_total =
      entrada::DistinctExact(result.records, KeyProviderless(), google);
  split.resolvers_public = entrada::DistinctExact(
      result.records, KeyProviderless(), entrada::And(google, is_public));
  return split;
}

std::map<std::string, double> ComputeRrTypeMix(
    const cloud::ScenarioResult& result, cloud::Provider provider) {
  auto agg = entrada::CountBy(result.records, entrada::KeyQtype(),
                              FilterProvider(result, provider));
  std::map<std::string, double> mix;
  static const char* kCategories[] = {"A", "AAAA", "NS", "DS", "DNSKEY", "MX"};
  std::uint64_t categorized = 0;
  for (const char* category : kCategories) {
    std::uint64_t count = agg.Of(category);
    mix[category] = agg.total == 0
                        ? 0
                        : static_cast<double>(count) /
                              static_cast<double>(agg.total);
    categorized += count;
  }
  mix["OTHER"] = agg.total == 0
                     ? 0
                     : static_cast<double>(agg.total - categorized) /
                           static_cast<double>(agg.total);
  return mix;
}

std::vector<MonthlyQtypeRow> ComputeMonthlyQtypes(
    const cloud::ScenarioResult& result, cloud::Provider provider) {
  auto months = entrada::CountByMonth(result.records, entrada::KeyQtype(),
                                      FilterProvider(result, provider));
  std::vector<MonthlyQtypeRow> rows;
  for (const auto& [month, agg] : months) {
    MonthlyQtypeRow row;
    row.month = month;
    row.total = agg.total;
    for (const auto& [qtype, count] : agg.counts) {
      row.qtype_share[qtype] =
          static_cast<double>(count) / static_cast<double>(agg.total);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

double ComputeJunkRatio(const cloud::ScenarioResult& result,
                        std::optional<cloud::Provider> provider) {
  entrada::Filter filter =
      provider ? FilterProvider(result, *provider) : entrada::Filter{};
  std::uint64_t total = entrada::CountIf(result.records, filter);
  std::uint64_t junk = entrada::CountIf(
      result.records, entrada::And(filter, entrada::FilterJunk()));
  return total == 0 ? 0 : static_cast<double>(junk) / static_cast<double>(total);
}

TransportMix ComputeTransportMix(const cloud::ScenarioResult& result,
                                 cloud::Provider provider) {
  TransportMix mix;
  for (const auto& record : result.records) {
    if (ProviderOfRecord(result, record) != provider) continue;
    ++mix.total;
    if (record.src.is_v6()) {
      mix.ipv6 += 1;
    } else {
      mix.ipv4 += 1;
    }
    if (record.transport == dns::Transport::kTcp) {
      mix.tcp += 1;
    } else {
      mix.udp += 1;
    }
  }
  if (mix.total > 0) {
    double total = static_cast<double>(mix.total);
    mix.ipv4 /= total;
    mix.ipv6 /= total;
    mix.udp /= total;
    mix.tcp /= total;
  }
  return mix;
}

ResolverFamilyCount ComputeResolverFamilies(const cloud::ScenarioResult& result,
                                            cloud::Provider provider) {
  ResolverFamilyCount count;
  auto filter = FilterProvider(result, provider);
  count.total = entrada::DistinctExact(result.records, KeyProviderless(),
                                       filter);
  count.v4 = entrada::DistinctExact(
      result.records, KeyProviderless(),
      entrada::And(filter, [](const capture::CaptureRecord& r) {
        return r.src.is_v4();
      }));
  count.v6 = count.total - count.v4;
  return count;
}

std::vector<FacebookSiteStats> ComputeFacebookSites(
    const cloud::ScenarioResult& result, std::uint32_t server_id) {
  RdnsDatabase rdns(result.ptr_records);

  struct SiteAccumulator {
    std::uint64_t queries = 0;
    std::uint64_t v6 = 0;
    std::vector<double> tcp_rtt_v4_ms;
    std::vector<double> tcp_rtt_v6_ms;
  };
  std::map<std::string, SiteAccumulator> sites;
  std::vector<net::IpAddress> facebook_sources;

  for (const auto& record : result.records) {
    if (record.server_id != server_id) continue;
    if (ProviderOfRecord(result, record) != cloud::Provider::kFacebook) {
      continue;
    }
    auto ptr = rdns.Lookup(record.src);
    if (!ptr) continue;  // the paper saw 3 addresses with no PTR
    auto site = SiteTagFromPtr(*ptr);
    if (!site) continue;
    SiteAccumulator& acc = sites[*site];
    ++acc.queries;
    acc.v6 += record.src.is_v6();
    if (record.transport == dns::Transport::kTcp &&
        record.tcp_handshake_rtt_us > 0) {
      double ms = static_cast<double>(record.tcp_handshake_rtt_us) / 1000.0;
      (record.src.is_v6() ? acc.tcp_rtt_v6_ms : acc.tcp_rtt_v4_ms)
          .push_back(ms);
    }
    facebook_sources.push_back(record.src);
  }

  // Dual-stack identification: group observed sources by PTR name; a name
  // seen from both families is one dual-stack host.
  auto groups = rdns.GroupByPtrName(facebook_sources);
  std::map<std::string, std::size_t> dual_per_site;
  for (const auto& [name, addresses] : groups) {
    bool v4 = false, v6 = false;
    for (const auto& address : addresses) {
      (address.is_v4() ? v4 : v6) = true;
    }
    if (v4 && v6) {
      auto parsed = dns::Name::Parse(name);
      if (parsed) {
        if (auto site = SiteTagFromPtr(*parsed)) ++dual_per_site[*site];
      }
    }
  }

  std::vector<FacebookSiteStats> stats;
  for (auto& [site, acc] : sites) {
    FacebookSiteStats row;
    row.site = site;
    row.queries = acc.queries;
    row.v6_share = acc.queries == 0
                       ? 0
                       : static_cast<double>(acc.v6) /
                             static_cast<double>(acc.queries);
    auto median = [](std::vector<double>& values) -> std::optional<double> {
      if (values.empty()) return std::nullopt;
      entrada::Cdf cdf;
      for (double v : values) cdf.Add(v);
      return cdf.Median();
    };
    row.median_rtt_v4_ms = median(acc.tcp_rtt_v4_ms);
    row.median_rtt_v6_ms = median(acc.tcp_rtt_v6_ms);
    row.dual_stack_hosts = dual_per_site[site];
    stats.push_back(std::move(row));
  }
  std::sort(stats.begin(), stats.end(),
            [](const FacebookSiteStats& a, const FacebookSiteStats& b) {
              return a.queries > b.queries;
            });
  return stats;
}

EdnsStats ComputeEdnsStats(const cloud::ScenarioResult& result,
                           cloud::Provider provider) {
  EdnsStats stats;
  auto filter = FilterProvider(result, provider);
  auto udp_with_edns = entrada::And(
      filter, [](const capture::CaptureRecord& r) {
        return r.transport == dns::Transport::kUdp && r.has_edns;
      });
  entrada::Cdf cdf = entrada::CollectCdf(
      result.records,
      [](const capture::CaptureRecord& r) -> std::optional<double> {
        return static_cast<double>(r.edns_udp_size);
      },
      udp_with_edns);
  stats.fraction_at_512 = cdf.FractionAtOrBelow(512);
  stats.fraction_up_to_1232 = cdf.FractionAtOrBelow(1232);
  stats.cdf = cdf.Curve();

  std::uint64_t udp = entrada::CountIf(
      result.records, entrada::And(filter, entrada::FilterTransport(
                                               dns::Transport::kUdp)));
  std::uint64_t truncated = entrada::CountIf(
      result.records,
      entrada::And(filter, [](const capture::CaptureRecord& r) {
        return r.transport == dns::Transport::kUdp && r.tc;
      }));
  stats.truncated_udp =
      udp == 0 ? 0 : static_cast<double>(truncated) / static_cast<double>(udp);
  return stats;
}

}  // namespace clouddns::analysis
