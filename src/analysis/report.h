// Plain-text table rendering for the bench harness: every reproduced table
// and figure prints in the same aligned paper-vs-measured format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace clouddns::analysis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with a header rule and right-padded columns.
  [[nodiscard]] std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3%" (one decimal).
[[nodiscard]] std::string Percent(double fraction);
/// "0.52" style ratio with two decimals, as the paper's Table 5 prints.
[[nodiscard]] std::string Ratio(double fraction);
/// Counts with thousands separators ("1,234,567").
[[nodiscard]] std::string Count(std::uint64_t value);
/// Fixed-precision double.
[[nodiscard]] std::string Fixed(double value, int decimals);

/// Prints a section banner for one experiment.
void PrintBanner(const std::string& experiment_id, const std::string& title);

}  // namespace clouddns::analysis
