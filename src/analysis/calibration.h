// The paper's reported values, transcribed for the paper-vs-measured
// columns the bench harness prints. Figure values are read off the plots
// and are therefore approximate (marked ~); table values are exact.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cloud/providers.h"
#include "cloud/scenario.h"

namespace clouddns::analysis::paper {

// ---- Table 3: evaluated datasets (queries in billions) ----
struct Table3Row {
  double queries_total_b = 0;
  double queries_valid_b = 0;
  double resolvers_m = 0;
  std::uint64_t ases = 0;
};
inline std::optional<Table3Row> Table3(cloud::Vantage vantage, int year) {
  using V = cloud::Vantage;
  if (vantage == V::kNl) {
    if (year == 2018) return Table3Row{7.29, 6.53, 2.09, 41276};
    if (year == 2019) return Table3Row{10.16, 9.05, 2.18, 42727};
    if (year == 2020) return Table3Row{13.75, 11.88, 1.99, 41716};
  }
  if (vantage == V::kNz) {
    if (year == 2018) return Table3Row{2.95, 2.00, 1.28, 37623};
    if (year == 2019) return Table3Row{3.48, 2.81, 1.42, 39601};
    if (year == 2020) return Table3Row{4.57, 3.03, 1.31, 38505};
  }
  if (vantage == V::kRoot) {
    if (year == 2018) return Table3Row{2.68, 0.93, 4.23, 45210};
    if (year == 2019) return Table3Row{4.13, 1.43, 4.13, 48154};
    if (year == 2020) return Table3Row{6.70, 1.34, 6.01, 51820};
  }
  return std::nullopt;
}

// ---- Figure 1: CP share of all queries (read off the plots, ~) ----
inline double Figure1CloudShare(cloud::Vantage vantage, int year) {
  using V = cloud::Vantage;
  if (vantage == V::kNl) return year == 2018 ? 0.32 : (year == 2019 ? 0.33 : 0.31);
  if (vantage == V::kNz) return year == 2018 ? 0.28 : (year == 2019 ? 0.29 : 0.30);
  return year == 2018 ? 0.055 : (year == 2019 ? 0.075 : 0.087);  // B-Root
}
/// §4.1: the 2020 B-Root CP share quoted in the text.
inline constexpr double kFigure1RootShare2020 = 0.087;

// ---- Table 4 / Table 7: Google public-DNS split ----
struct GoogleSplitRow {
  double query_ratio;     ///< Public queries / all Google queries.
  double resolver_ratio;  ///< Public sources / all Google sources.
};
inline std::optional<GoogleSplitRow> GoogleSplitRef(cloud::Vantage vantage,
                                                    int year) {
  using V = cloud::Vantage;
  if (year == 2020) {
    if (vantage == V::kNl) return GoogleSplitRow{0.865, 0.156};
    if (vantage == V::kNz) return GoogleSplitRow{0.884, 0.187};
  }
  if (year == 2019) {  // Appendix A, Table 7
    if (vantage == V::kNl) return GoogleSplitRow{0.893, 0.154};
    if (vantage == V::kNz) return GoogleSplitRow{0.844, 0.177};
  }
  return std::nullopt;
}

// ---- Table 5: per-CP transport mix for the ccTLDs ----
struct Table5Row {
  double ipv4, ipv6, udp, tcp;
};
inline std::optional<Table5Row> Table5(cloud::Provider provider,
                                       cloud::Vantage vantage, int year) {
  using P = cloud::Provider;
  using V = cloud::Vantage;
  const bool nl = vantage == V::kNl;
  if (vantage != V::kNl && vantage != V::kNz) return std::nullopt;
  switch (provider) {
    case P::kGoogle:
      if (year == 2018) return nl ? Table5Row{0.66, 0.34, 1, 0}
                                  : Table5Row{0.61, 0.39, 1, 0};
      if (year == 2019) return nl ? Table5Row{0.49, 0.51, 1, 0}
                                  : Table5Row{0.54, 0.46, 1, 0};
      return nl ? Table5Row{0.52, 0.48, 1, 0} : Table5Row{0.54, 0.46, 1, 0};
    case P::kAmazon:
      if (year == 2018) return nl ? Table5Row{1, 0, 1, 0}
                                  : Table5Row{1, 0, 0.98, 0.02};
      if (year == 2019) return nl ? Table5Row{0.98, 0.02, 0.98, 0.02}
                                  : Table5Row{0.97, 0.03, 0.96, 0.04};
      return nl ? Table5Row{0.97, 0.03, 0.95, 0.05}
                : Table5Row{0.96, 0.04, 0.95, 0.05};
    case P::kMicrosoft:
      return Table5Row{1, 0, 1, 0};
    case P::kFacebook:
      if (year == 2018) return nl ? Table5Row{0.52, 0.48, 0.79, 0.21}
                                  : Table5Row{0.51, 0.49, 0.52, 0.48};
      if (year == 2019) return nl ? Table5Row{0.24, 0.76, 0.85, 0.15}
                                  : Table5Row{0.19, 0.81, 0.83, 0.17};
      return nl ? Table5Row{0.24, 0.76, 0.86, 0.14}
                : Table5Row{0.17, 0.83, 0.85, 0.15};
    case P::kCloudflare:
      if (year == 2018) return Table5Row{0.54, 0.46, 1, 0};
      if (year == 2019) return nl ? Table5Row{0.57, 0.43, 0.99, 0.01}
                                  : Table5Row{0.56, 0.44, 1, 0};
      return nl ? Table5Row{0.51, 0.49, 0.98, 0.02}
                : Table5Row{0.49, 0.51, 0.99, 0.01};
    default:
      return std::nullopt;
  }
}

// ---- Table 6: Amazon/Microsoft resolver sources by family (w2020) ----
struct Table6Row {
  std::uint64_t total, v4, v6;
};
inline std::optional<Table6Row> Table6(cloud::Provider provider,
                                       cloud::Vantage vantage) {
  using P = cloud::Provider;
  using V = cloud::Vantage;
  if (provider == P::kAmazon) {
    if (vantage == V::kNl) return Table6Row{38317, 37640, 677};
    if (vantage == V::kNz) return Table6Row{34645, 33908, 737};
  }
  if (provider == P::kMicrosoft) {
    if (vantage == V::kNl) return Table6Row{14494, 14069, 425};
    if (vantage == V::kNz) return Table6Row{10206, 9738, 468};
  }
  return std::nullopt;
}

// ---- Figure 4: junk ratios (text of §3; per-CP values read off plots) --
inline double SectionThreeJunk(cloud::Vantage vantage, int year) {
  using V = cloud::Vantage;
  if (vantage == V::kNl) {
    return year == 2018 ? 1 - 6.53 / 7.29
                        : (year == 2019 ? 1 - 9.05 / 10.16 : 1 - 11.88 / 13.75);
  }
  if (vantage == V::kNz) {
    return year == 2018 ? 1 - 2.00 / 2.95
                        : (year == 2019 ? 1 - 2.81 / 3.48 : 1 - 3.03 / 4.57);
  }
  return year == 2018 ? 1 - 0.93 / 2.68
                      : (year == 2019 ? 1 - 1.43 / 4.13 : 1 - 1.34 / 6.70);
}

// ---- Figure 6: EDNS sizes + §4.4 truncation ratios (.nl w2020) ----
inline constexpr double kFacebookEdns512Share = 0.30;
inline constexpr double kGoogleEdnsUpTo1232Share = 0.24;
inline constexpr double kFacebookTruncated = 0.1716;
inline constexpr double kGoogleTruncated = 0.0004;
inline constexpr double kMicrosoftTruncated = 0.0001;

// ---- Figure 3: Q-min deployment instant (§4.2.1) ----
inline constexpr const char* kGoogleQminMonth = "2019-12";
inline constexpr const char* kNzCyclicEventMonth = "2020-02";

// ---- §4.1 headline numbers ----
inline constexpr double kCcTldCloudShareHeadline = 0.30;  // ">30%"
inline constexpr std::uint64_t kCloudAsCount = 20;        // Table 1

}  // namespace clouddns::analysis::paper
