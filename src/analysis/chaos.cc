#include "analysis/chaos.h"

namespace clouddns::analysis {
namespace {

double Ratio(std::uint64_t numerator, std::uint64_t denominator) {
  if (denominator == 0) return 0.0;
  return static_cast<double>(numerator) / static_cast<double>(denominator);
}

}  // namespace

RetryAmplification ComputeRetryAmplification(
    const cloud::ScenarioResult& baseline,
    const cloud::ScenarioResult& faulted) {
  RetryAmplification amp;
  amp.baseline_upstream = baseline.robustness.upstream_queries;
  amp.faulted_upstream = faulted.robustness.upstream_queries;
  amp.baseline_captured = baseline.records.size();
  amp.faulted_captured = faulted.records.size();
  amp.upstream_factor = Ratio(amp.faulted_upstream, amp.baseline_upstream);
  amp.captured_factor = Ratio(amp.faulted_captured, amp.baseline_captured);
  amp.faulted_counters = faulted.robustness;
  return amp;
}

std::vector<ChaosSeriesPoint> DailyCaptureSeries(
    const cloud::ScenarioResult& baseline,
    const cloud::ScenarioResult& faulted) {
  std::vector<ChaosSeriesPoint> series;
  const sim::TimeUs start = baseline.window_start;
  const sim::TimeUs end = baseline.window_end;
  if (end <= start) return series;
  const std::size_t days = static_cast<std::size_t>(
      (end - start + sim::kMicrosPerDay - 1) / sim::kMicrosPerDay);
  series.resize(days);
  for (std::size_t d = 0; d < days; ++d) {
    series[d].day_start = start + d * sim::kMicrosPerDay;
  }
  // Scan shard-wise: day bucketing only adds counts, so visiting records
  // in per-shard rather than merged order changes nothing — and skips the
  // flatten entirely.
  auto accumulate = [&](const capture::ShardedCapture& records,
                        std::uint64_t ChaosSeriesPoint::* field) {
    for (std::size_t s = 0; s < records.shard_count(); ++s) {
      for (const auto& record : records.shard(s)) {
        if (record.time_us < start || record.time_us >= end) continue;
        std::size_t d = static_cast<std::size_t>((record.time_us - start) /
                                                 sim::kMicrosPerDay);
        series[d].*field += 1;
      }
    }
  };
  accumulate(baseline.records, &ChaosSeriesPoint::baseline_captured);
  accumulate(faulted.records, &ChaosSeriesPoint::faulted_captured);
  return series;
}

}  // namespace clouddns::analysis
