// One compute function per paper table/figure. Each takes a ScenarioResult
// (or several) and returns the numbers that bench binaries render next to
// the paper's reported values.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cloud/scenario.h"
#include "entrada/analytics.h"
#include "entrada/plan.h"

namespace clouddns::analysis {

/// Attribution of a capture record to a provider via AS enrichment.
[[nodiscard]] cloud::Provider ProviderOfRecord(
    const cloud::ScenarioResult& result, const capture::CaptureRecord& record);

/// Filter for one provider's records.
[[nodiscard]] entrada::Filter FilterProvider(const cloud::ScenarioResult& result,
                                             cloud::Provider provider);

/// Per-record provider tag for AnalysisPlan: the record's source AS mapped
/// through Table 1 (value = static_cast of cloud::Provider). Flattens the
/// AS->provider table once instead of walking it per record. The result
/// must outlive the returned functor.
[[nodiscard]] entrada::TagFn ProviderTag(const cloud::ScenarioResult& result);
/// AS-pure variant for AnalysisPlan::SetAsnTag: the plan resolves the
/// source AS itself (via SetAsDatabase) and memoizes per source address,
/// so the Table 1 lookup runs once per distinct resolver, not per query.
[[nodiscard]] entrada::AsnTagFn ProviderAsnTag();
/// Renders provider tags for report keys ("GOOGLE", ...).
[[nodiscard]] entrada::TagNamer ProviderTagNamer();

// ---- Table 3: dataset totals ----
struct DatasetStats {
  std::uint64_t queries_total = 0;
  std::uint64_t queries_valid = 0;
  std::uint64_t resolvers_exact = 0;
  double resolvers_hll = 0;
  std::uint64_t ases_exact = 0;
  double ases_hll = 0;
};
[[nodiscard]] DatasetStats ComputeDatasetStats(
    const cloud::ScenarioResult& result);

// ---- Figure 1: per-provider query share ----
struct ProviderShare {
  cloud::Provider provider;
  std::uint64_t queries = 0;
  double share = 0;
};
/// Shares of *all* queries per measured provider, plus the combined CP
/// total as the last element (provider kOther carries the 5-CP sum).
[[nodiscard]] std::vector<ProviderShare> ComputeCloudShares(
    const cloud::ScenarioResult& result);

// ---- Table 4 / Table 7: Google public vs rest ----
struct GoogleSplit {
  std::uint64_t queries_total = 0;
  std::uint64_t queries_public = 0;
  std::uint64_t resolvers_total = 0;
  std::uint64_t resolvers_public = 0;
  [[nodiscard]] double QueryRatio() const {
    return queries_total == 0
               ? 0
               : static_cast<double>(queries_public) /
                     static_cast<double>(queries_total);
  }
  [[nodiscard]] double ResolverRatio() const {
    return resolvers_total == 0
               ? 0
               : static_cast<double>(resolvers_public) /
                     static_cast<double>(resolvers_total);
  }
};
[[nodiscard]] GoogleSplit ComputeGoogleSplit(
    const cloud::ScenarioResult& result);

// ---- Figure 2 / Figure 7: RR-type mix per provider ----
/// Keyed by the Fig. 2 categories: A, AAAA, NS, DS, DNSKEY, MX, OTHER.
[[nodiscard]] std::map<std::string, double> ComputeRrTypeMix(
    const cloud::ScenarioResult& result, cloud::Provider provider);

// ---- Figure 3: monthly qtype series (for the Google longitudinal run) --
struct MonthlyQtypeRow {
  std::string month;  ///< "2019-12"
  std::uint64_t total = 0;
  std::map<std::string, double> qtype_share;
};
[[nodiscard]] std::vector<MonthlyQtypeRow> ComputeMonthlyQtypes(
    const cloud::ScenarioResult& result, cloud::Provider provider);

// ---- Figure 4: junk ratio per provider ----
[[nodiscard]] double ComputeJunkRatio(const cloud::ScenarioResult& result,
                                      std::optional<cloud::Provider> provider);

/// Every provider's junk ratio plus the dataset-wide ratio, from ONE
/// fused pass over the capture (the Fig. 4 driver).
struct JunkRatios {
  double overall = 0;
  std::map<cloud::Provider, double> per_provider;
};
[[nodiscard]] JunkRatios ComputeJunkRatios(const cloud::ScenarioResult& result);

// ---- Table 5: transport/IP-version distribution per provider ----
struct TransportMix {
  double ipv4 = 0, ipv6 = 0, udp = 0, tcp = 0;
  std::uint64_t total = 0;
};
[[nodiscard]] TransportMix ComputeTransportMix(
    const cloud::ScenarioResult& result, cloud::Provider provider);

/// Every measured provider's transport mix from ONE fused pass (the
/// Table 5 driver; the per-provider function above re-scans per call).
[[nodiscard]] std::map<cloud::Provider, TransportMix> ComputeTransportMixes(
    const cloud::ScenarioResult& result);

/// Every measured provider's RR-type mix from ONE fused pass (the
/// Fig. 2 / Fig. 7 driver).
[[nodiscard]] std::map<cloud::Provider, std::map<std::string, double>>
ComputeRrTypeMixes(const cloud::ScenarioResult& result);

// ---- Table 6: resolver source counts per family ----
struct ResolverFamilyCount {
  std::uint64_t total = 0, v4 = 0, v6 = 0;
};
[[nodiscard]] ResolverFamilyCount ComputeResolverFamilies(
    const cloud::ScenarioResult& result, cloud::Provider provider);

// ---- Figure 5 / Figure 8: Facebook per-site dual-stack & RTT ----
struct FacebookSiteStats {
  std::string site;        ///< Airport code from rDNS.
  std::uint64_t queries = 0;
  double v6_share = 0;
  /// Median TCP-handshake RTT (ms) per family; nullopt when the site sent
  /// no TCP over that family (Location 1 in the paper).
  std::optional<double> median_rtt_v4_ms;
  std::optional<double> median_rtt_v6_ms;
  std::size_t dual_stack_hosts = 0;
};
/// Per-site stats for queries captured at one server (`server_id`),
/// using reverse DNS to locate sites and to match dual-stack hosts.
[[nodiscard]] std::vector<FacebookSiteStats> ComputeFacebookSites(
    const cloud::ScenarioResult& result, std::uint32_t server_id);

// ---- Figure 6: EDNS(0) size CDF + truncation ----
struct EdnsStats {
  /// (size, cumulative fraction) curve over UDP queries with EDNS.
  std::vector<std::pair<double, double>> cdf;
  double fraction_at_512 = 0;
  double fraction_up_to_1232 = 0;
  /// Share of UDP answers that were truncated.
  double truncated_udp = 0;
};
[[nodiscard]] EdnsStats ComputeEdnsStats(const cloud::ScenarioResult& result,
                                         cloud::Provider provider);

}  // namespace clouddns::analysis
