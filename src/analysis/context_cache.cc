#include "analysis/context_cache.h"

#include <sstream>

namespace clouddns::analysis {
namespace {

constexpr const char* kMagic = "CLOUDDNSCTX";
// v2: adds the "robust" line (fleet-wide retry/timeout/failover totals).
constexpr int kVersion = 2;

// Reads one line and splits off the leading tag; returns false on EOF or
// tag mismatch. The payload (everything after the tag and one space) lands
// in `rest`.
bool ReadTagged(std::istream& in, const char* tag, std::string& rest) {
  std::string line;
  if (!std::getline(in, line)) return false;
  const std::size_t tag_len = std::string(tag).size();
  if (line.compare(0, tag_len, tag) != 0) return false;
  if (line.size() == tag_len) {
    rest.clear();
    return true;
  }
  if (line[tag_len] != ' ') return false;
  rest = line.substr(tag_len + 1);
  return true;
}

bool ParseScenarioContext(std::istream& in, cloud::ScenarioResult& result);

}  // namespace

base::io::IoStatus SaveScenarioContextStatus(
    const std::string& path, const cloud::ScenarioResult& result) {
  std::ostringstream out;
  out << kMagic << " v" << kVersion << "\n";
  out << "window " << result.window_start << " " << result.window_end << "\n";

  out << "zones " << result.zone_domain_count << " "
      << result.zone_domains_by_tld.size() << "\n";
  for (const auto& [tld, count] : result.zone_domains_by_tld) {
    out << "tld " << count << " " << tld << "\n";
  }

  out << "servers " << result.servers.size() << "\n";
  for (const auto& server : result.servers) {
    out << "server " << server.id << " " << (server.captured ? 1 : 0) << " "
        << (server.anycast ? 1 : 0) << " " << server.sites << " "
        << server.label << "\n";
  }

  auto ases = result.asdb.AllInfo();
  out << "as " << ases.size() << "\n";
  for (const auto& info : ases) {
    out << "a " << info.asn << " " << info.org << "\n";
  }
  const auto& announcements = result.asdb.announcements();
  out << "announce " << announcements.size() << "\n";
  for (const auto& [prefix, asn] : announcements) {
    out << "p " << asn << " " << prefix.ToString() << "\n";
  }

  auto google = result.google_public.Entries();
  out << "google " << google.size() << "\n";
  for (const auto& [prefix, flag] : google) {
    out << "g " << (flag ? 1 : 0) << " " << prefix.ToString() << "\n";
  }

  out << "ptr " << result.ptr_records.size() << "\n";
  for (const auto& [address, name] : result.ptr_records) {
    out << "r " << address.ToString() << " " << name.ToString() << "\n";
  }

  out << "issued " << result.client_queries_issued << "\n";
  out << "leaf " << result.leaf_queries << "\n";
  out << "perprov " << result.client_queries_per_provider.size() << "\n";
  for (const auto& [provider, count] : result.client_queries_per_provider) {
    out << "q " << count << " " << provider << "\n";
  }
  out << "robust " << result.robustness.upstream_queries << " "
      << result.robustness.retransmits << " " << result.robustness.timeouts
      << " " << result.robustness.failovers << " "
      << result.robustness.served_stale << "\n";
  out << "end\n";

  const std::string text = out.str();
  std::vector<std::uint8_t> payload(text.begin(), text.end());
  return base::io::WriteFramedFile(path, base::io::kTagContext, payload);
}

bool SaveScenarioContext(const std::string& path,
                         const cloud::ScenarioResult& result) {
  return SaveScenarioContextStatus(path, result).ok();
}

base::io::IoStatus LoadScenarioContextStatus(const std::string& path,
                                             cloud::ScenarioResult& result) {
  std::vector<std::uint8_t> payload;
  base::io::IoStatus status =
      base::io::ReadFramedFile(path, base::io::kTagContext, payload);
  if (!status.ok()) return status;
  std::istringstream in(std::string(payload.begin(), payload.end()));
  if (ParseScenarioContext(in, result)) return base::io::IoStatus::Ok();
  return base::io::IoStatus::Error(
      base::io::IoCode::kPayloadCorrupt,
      "context sidecar text malformed or version-mismatched");
}

bool LoadScenarioContext(const std::string& path,
                         cloud::ScenarioResult& result) {
  return LoadScenarioContextStatus(path, result).ok();
}

namespace {

bool ParseScenarioContext(std::istream& in, cloud::ScenarioResult& result) {
  std::string rest;
  if (!ReadTagged(in, kMagic, rest)) return false;
  if (rest != "v" + std::to_string(kVersion)) return false;

  if (!ReadTagged(in, "window", rest)) return false;
  {
    std::istringstream fields(rest);
    if (!(fields >> result.window_start >> result.window_end)) return false;
  }

  std::size_t tld_count = 0;
  if (!ReadTagged(in, "zones", rest)) return false;
  {
    std::istringstream fields(rest);
    if (!(fields >> result.zone_domain_count >> tld_count)) return false;
  }
  result.zone_domains_by_tld.clear();
  for (std::size_t i = 0; i < tld_count; ++i) {
    if (!ReadTagged(in, "tld", rest)) return false;
    std::istringstream fields(rest);
    std::size_t count = 0;
    std::string tld;
    if (!(fields >> count >> tld)) return false;
    result.zone_domains_by_tld[tld] = count;
  }

  std::size_t server_count = 0;
  if (!ReadTagged(in, "servers", rest)) return false;
  if (!(std::istringstream(rest) >> server_count)) return false;
  result.servers.clear();
  for (std::size_t i = 0; i < server_count; ++i) {
    if (!ReadTagged(in, "server", rest)) return false;
    std::istringstream fields(rest);
    cloud::ServerMeta meta;
    int captured = 0, anycast = 0;
    if (!(fields >> meta.id >> captured >> anycast >> meta.sites >>
          meta.label)) {
      return false;
    }
    meta.captured = captured != 0;
    meta.anycast = anycast != 0;
    result.servers.push_back(std::move(meta));
  }

  std::size_t as_count = 0;
  if (!ReadTagged(in, "as", rest)) return false;
  if (!(std::istringstream(rest) >> as_count)) return false;
  result.asdb = net::AsDatabase();
  for (std::size_t i = 0; i < as_count; ++i) {
    if (!ReadTagged(in, "a", rest)) return false;
    std::istringstream fields(rest);
    net::Asn asn = 0;
    if (!(fields >> asn)) return false;
    std::string org;
    std::getline(fields, org);
    if (!org.empty() && org.front() == ' ') org.erase(0, 1);
    result.asdb.AddAs(asn, std::move(org));
  }
  std::size_t announce_count = 0;
  if (!ReadTagged(in, "announce", rest)) return false;
  if (!(std::istringstream(rest) >> announce_count)) return false;
  for (std::size_t i = 0; i < announce_count; ++i) {
    if (!ReadTagged(in, "p", rest)) return false;
    std::istringstream fields(rest);
    net::Asn asn = 0;
    std::string text;
    if (!(fields >> asn >> text)) return false;
    auto prefix = net::Prefix::Parse(text);
    if (!prefix) return false;
    result.asdb.Announce(*prefix, asn);
  }

  std::size_t google_count = 0;
  if (!ReadTagged(in, "google", rest)) return false;
  if (!(std::istringstream(rest) >> google_count)) return false;
  result.google_public = net::PrefixMap<bool>();
  for (std::size_t i = 0; i < google_count; ++i) {
    if (!ReadTagged(in, "g", rest)) return false;
    std::istringstream fields(rest);
    int flag = 0;
    std::string text;
    if (!(fields >> flag >> text)) return false;
    auto prefix = net::Prefix::Parse(text);
    if (!prefix) return false;
    result.google_public.Insert(*prefix, flag != 0);
  }

  std::size_t ptr_count = 0;
  if (!ReadTagged(in, "ptr", rest)) return false;
  if (!(std::istringstream(rest) >> ptr_count)) return false;
  result.ptr_records.clear();
  result.ptr_records.reserve(ptr_count);
  for (std::size_t i = 0; i < ptr_count; ++i) {
    if (!ReadTagged(in, "r", rest)) return false;
    std::istringstream fields(rest);
    std::string address_text, name_text;
    if (!(fields >> address_text >> name_text)) return false;
    auto address = net::IpAddress::Parse(address_text);
    auto name = dns::Name::Parse(name_text);
    if (!address || !name) return false;
    result.ptr_records.emplace_back(*address, std::move(*name));
  }

  if (!ReadTagged(in, "issued", rest)) return false;
  if (!(std::istringstream(rest) >> result.client_queries_issued)) {
    return false;
  }
  if (!ReadTagged(in, "leaf", rest)) return false;
  if (!(std::istringstream(rest) >> result.leaf_queries)) return false;

  std::size_t provider_count = 0;
  if (!ReadTagged(in, "perprov", rest)) return false;
  if (!(std::istringstream(rest) >> provider_count)) return false;
  result.client_queries_per_provider.clear();
  for (std::size_t i = 0; i < provider_count; ++i) {
    if (!ReadTagged(in, "q", rest)) return false;
    std::istringstream fields(rest);
    std::uint64_t count = 0;
    if (!(fields >> count)) return false;
    std::string provider;
    std::getline(fields, provider);
    if (!provider.empty() && provider.front() == ' ') provider.erase(0, 1);
    result.client_queries_per_provider[provider] = count;
  }

  if (!ReadTagged(in, "robust", rest)) return false;
  {
    std::istringstream fields(rest);
    if (!(fields >> result.robustness.upstream_queries >>
          result.robustness.retransmits >> result.robustness.timeouts >>
          result.robustness.failovers >> result.robustness.served_stale)) {
      return false;
    }
  }

  return ReadTagged(in, "end", rest);
}

}  // namespace

}  // namespace clouddns::analysis
