#include "analysis/report.h"

#include <algorithm>
#include <cstdio>

namespace clouddns::analysis {

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out.append(rule - 2, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

std::string Ratio(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", fraction);
  return buf;
}

std::string Count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out += ',';
      since_sep = 0;
    }
    out += *it;
    ++since_sep;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

void PrintBanner(const std::string& experiment_id, const std::string& title) {
  std::string line(72, '=');
  std::printf("\n%s\n%s — %s\n%s\n", line.c_str(), experiment_id.c_str(),
              title.c_str(), line.c_str());
}

}  // namespace clouddns::analysis
