// RSSAC002-style daily metrics.
//
// Root server operators publish standardized daily measurement files
// (RSSAC002: traffic volume, rcode volume, unique sources, traffic sizes);
// §3 of the paper derives root-wide valid-query ratios from them. This
// module computes the same metrics from a capture stream and renders them
// in the YAML-like layout the published files use, so our B-Root vantage
// can be compared against the real feeds' structure.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "capture/record.h"

namespace clouddns::analysis {

struct Rssac002Day {
  std::string date;  ///< "2020-05-06"
  std::uint64_t queries = 0;
  std::map<std::string, std::uint64_t> rcode_volume;
  std::uint64_t udp_queries = 0;
  std::uint64_t tcp_queries = 0;
  std::uint64_t ipv4_queries = 0;
  std::uint64_t ipv6_queries = 0;
  /// Exact transport x family cells, as the published files report them.
  std::uint64_t udp_ipv4 = 0, udp_ipv6 = 0, tcp_ipv4 = 0, tcp_ipv6 = 0;
  std::uint64_t unique_sources_ipv4 = 0;
  std::uint64_t unique_sources_ipv6 = 0;
  double average_query_size = 0;
  double average_response_size = 0;

  [[nodiscard]] double ValidRatio() const {
    auto it = rcode_volume.find("NOERROR");
    return queries == 0 || it == rcode_volume.end()
               ? 0.0
               : static_cast<double>(it->second) /
                     static_cast<double>(queries);
  }
};

/// One entry per UTC day present in the capture, ascending.
[[nodiscard]] std::vector<Rssac002Day> Rssac002Report(
    const capture::CaptureBuffer& records);

/// Renders a day in the published files' YAML layout.
[[nodiscard]] std::string RenderRssac002Yaml(const Rssac002Day& day,
                                             const std::string& service);

}  // namespace clouddns::analysis
