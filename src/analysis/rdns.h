// Reverse-DNS database built from a scenario's PTR records and served out
// of real in-addr.arpa / ip6.arpa zones — the analysis-side half of the
// paper's §4.3 methodology (reverse-lookup every resolver address, then
// match v4/v6 addresses whose PTR names coincide to find dual-stack hosts).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "net/ip.h"
#include "zone/zone.h"

namespace clouddns::analysis {

class RdnsDatabase {
 public:
  explicit RdnsDatabase(
      const std::vector<std::pair<net::IpAddress, dns::Name>>& ptr_records);

  /// PTR lookup through the arpa zones (nullopt = NXDOMAIN).
  [[nodiscard]] std::optional<dns::Name> Lookup(
      const net::IpAddress& address) const;

  [[nodiscard]] std::size_t record_count() const { return count_; }

  /// Hosts grouped by identical PTR target name: the dual-stack matching
  /// step. Key is the lowercased PTR name; values are the addresses whose
  /// reverse lookup produced it, in input order. Ordered map: consumers
  /// iterate this straight into reports, so the boundary must be sorted
  /// (determinism contract, DESIGN.md §8).
  [[nodiscard]] std::map<std::string, std::vector<net::IpAddress>>
  GroupByPtrName(const std::vector<net::IpAddress>& addresses) const;

 private:
  zone::Zone v4_zone_;
  zone::Zone v6_zone_;
  std::size_t count_ = 0;
};

/// Extracts the site tag from a Facebook-style PTR name
/// ("edge-dns-x-y-z-w.ams.tfbnw.example" -> "ams"): the label right above
/// the provider domain, i.e. the third label from the end of the name
/// minus the "example" suffix. Returns nullopt for non-conforming names.
[[nodiscard]] std::optional<std::string> SiteTagFromPtr(const dns::Name& ptr);

}  // namespace clouddns::analysis
