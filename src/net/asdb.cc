#include "net/asdb.h"

#include <algorithm>
#include <stdexcept>

namespace clouddns::net {

void AsDatabase::AddAs(Asn asn, std::string org) {
  auto [it, inserted] = as_info_.try_emplace(asn, AsInfo{asn, std::move(org)});
  if (!inserted && it->second.org.empty()) it->second.org = org;
}

void AsDatabase::Announce(const Prefix& prefix, Asn asn) {
  if (!as_info_.contains(asn)) {
    throw std::invalid_argument("Announce: unknown ASN " +
                                std::to_string(asn));
  }
  routes_.Insert(prefix, asn);
  prefixes_.emplace_back(prefix, asn);
}

std::optional<Asn> AsDatabase::OriginAs(const IpAddress& addr) const {
  return routes_.Lookup(addr);
}

const AsInfo* AsDatabase::Info(Asn asn) const {
  auto it = as_info_.find(asn);
  return it == as_info_.end() ? nullptr : &it->second;
}

std::vector<AsInfo> AsDatabase::AllInfo() const {
  std::vector<AsInfo> out;
  out.reserve(as_info_.size());
  for (const auto& [asn, info] : as_info_) out.push_back(info);
  std::sort(out.begin(), out.end(),
            [](const AsInfo& a, const AsInfo& b) { return a.asn < b.asn; });
  return out;
}

std::vector<Prefix> AsDatabase::PrefixesOf(Asn asn) const {
  std::vector<Prefix> out;
  for (const auto& [prefix, owner] : prefixes_) {
    if (owner == asn) out.push_back(prefix);
  }
  return out;
}

}  // namespace clouddns::net
