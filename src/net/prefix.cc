#include "net/prefix.h"

#include <algorithm>

namespace clouddns::net {

IpAddress MaskAddress(const IpAddress& addr, int length) {
  if (addr.is_v4()) {
    std::uint32_t mask =
        length <= 0 ? 0u
                    : (length >= 32 ? ~0u : ~0u << (32 - length));
    return Ipv4Address(addr.v4().bits() & mask);
  }
  auto bytes = addr.v6().bytes();
  int clamped = std::clamp(length, 0, 128);
  for (int i = 0; i < 16; ++i) {
    int bits_before = i * 8;
    if (bits_before >= clamped) {
      bytes[static_cast<std::size_t>(i)] = 0;
    } else if (bits_before + 8 > clamped) {
      int keep = clamped - bits_before;
      bytes[static_cast<std::size_t>(i)] &=
          static_cast<std::uint8_t>(0xff << (8 - keep));
    }
  }
  return Ipv6Address(bytes);
}

Prefix::Prefix(IpAddress address, int length)
    : length_(std::clamp(length, 0, address.bit_width())) {
  address_ = MaskAddress(address, length_);
}

std::optional<Prefix> Prefix::Parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    auto addr = IpAddress::Parse(text);
    if (!addr) return std::nullopt;
    return Prefix(*addr, addr->bit_width());
  }
  auto addr = IpAddress::Parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  auto len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 3) return std::nullopt;
  int len = 0;
  for (char c : len_text) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + (c - '0');
  }
  if (len > addr->bit_width()) return std::nullopt;
  return Prefix(*addr, len);
}

bool Prefix::Contains(const IpAddress& addr) const {
  if (addr.is_v4() != address_.is_v4()) return false;
  return MaskAddress(addr, length_) == address_;
}

bool Prefix::Contains(const Prefix& other) const {
  if (other.is_v4() != is_v4()) return false;
  if (other.length_ < length_) return false;
  return Contains(other.address_);
}

std::string Prefix::ToString() const {
  return address_.ToString() + "/" + std::to_string(length_);
}

IpAddress HostInPrefix(const Prefix& prefix, std::uint64_t index) {
  if (prefix.is_v4()) {
    int host_bits = 32 - prefix.length();
    std::uint32_t span = host_bits >= 32
                             ? ~0u
                             : ((1u << host_bits) - 1u);
    std::uint32_t offset =
        span == 0 ? 0 : static_cast<std::uint32_t>(index % (std::uint64_t{span} + 1));
    return Ipv4Address(prefix.address().v4().bits() | offset);
  }
  // IPv6: place the index in the low 64 bits (fleets never exceed 2^64 hosts
  // and prefixes we generate are /64 or shorter).
  auto bytes = prefix.address().v6().bytes();
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(15 - i)] |=
        static_cast<std::uint8_t>(index >> (8 * i));
  }
  return Ipv6Address(bytes);
}

}  // namespace clouddns::net
