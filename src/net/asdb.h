// Autonomous-system database: prefix -> ASN origin mapping plus per-AS
// metadata, mirroring the routing-table enrichment step ENTRADA performs on
// every captured source address.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace clouddns::net {

using Asn = std::uint32_t;

struct AsInfo {
  Asn asn = 0;
  std::string org;  ///< Organization name ("GOOGLE", "NL-ISP-17", ...).
};

/// Immutable-after-build map from source address to origin AS.
class AsDatabase {
 public:
  /// Registers an AS; idempotent for the same ASN (org must not change).
  void AddAs(Asn asn, std::string org);

  /// Announces `prefix` from `asn`. The ASN must have been registered.
  /// More-specific announcements win on lookup, as in BGP.
  void Announce(const Prefix& prefix, Asn asn);

  /// Longest-prefix-match origin lookup.
  [[nodiscard]] std::optional<Asn> OriginAs(const IpAddress& addr) const;

  [[nodiscard]] const AsInfo* Info(Asn asn) const;
  [[nodiscard]] std::size_t as_count() const { return as_info_.size(); }
  [[nodiscard]] std::size_t prefix_count() const { return prefixes_.size(); }

  /// All announced prefixes for an AS, in announcement order.
  [[nodiscard]] std::vector<Prefix> PrefixesOf(Asn asn) const;

  /// Every announcement in original order; replaying AddAs + Announce over
  /// these rebuilds an identical database (dataset-cache serialization).
  [[nodiscard]] const std::vector<std::pair<Prefix, Asn>>& announcements()
      const {
    return prefixes_;
  }
  /// All registered ASes, ascending by ASN (deterministic serialization).
  [[nodiscard]] std::vector<AsInfo> AllInfo() const;

 private:
  PrefixMap<Asn> routes_;
  std::unordered_map<Asn, AsInfo> as_info_;
  std::vector<std::pair<Prefix, Asn>> prefixes_;
};

}  // namespace clouddns::net
