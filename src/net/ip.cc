#include "net/ip.h"

#include <charconv>
#include <cstdio>

namespace clouddns::net {
namespace {

// Parses a decimal octet 0..255 at the front of `text`, advancing it.
// Rejects empty input, leading zeros ("01"), and values > 255.
std::optional<std::uint8_t> ConsumeOctet(std::string_view& text) {
  std::size_t len = 0;
  unsigned value = 0;
  while (len < text.size() && text[len] >= '0' && text[len] <= '9') {
    value = value * 10 + static_cast<unsigned>(text[len] - '0');
    ++len;
    if (len > 3) return std::nullopt;
  }
  if (len == 0) return std::nullopt;
  if (len > 1 && text[0] == '0') return std::nullopt;
  if (value > 255) return std::nullopt;
  text.remove_prefix(len);
  return static_cast<std::uint8_t>(value);
}

std::optional<int> HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return std::nullopt;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  std::array<std::uint8_t, 4> octets{};
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text[0] != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto octet = ConsumeOctet(text);
    if (!octet) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Address(octets[0], octets[1], octets[2], octets[3]);
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  int n = std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1),
                        octet(2), octet(3));
  return std::string(buf, static_cast<std::size_t>(n));
}

std::array<std::uint8_t, 4> Ipv4Address::ToBytes() const {
  return {octet(0), octet(1), octet(2), octet(3)};
}

Ipv4Address Ipv4Address::FromBytes(const std::array<std::uint8_t, 4>& b) {
  return Ipv4Address(b[0], b[1], b[2], b[3]);
}

Ipv6Address Ipv6Address::FromGroups(
    const std::array<std::uint16_t, 8>& groups) {
  Bytes bytes{};
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xff);
  }
  return Ipv6Address(bytes);
}

std::optional<Ipv6Address> Ipv6Address::Parse(std::string_view text) {
  // Up to 8 groups; `gap` marks where "::" expands.
  std::array<std::uint16_t, 8> groups{};
  int count = 0;     // groups parsed so far
  int gap = -1;      // index of the "::" gap, -1 if none
  bool expect_group = true;

  if (text.starts_with("::")) {
    gap = 0;
    text.remove_prefix(2);
    if (text.empty()) return Ipv6Address{};  // "::"
  } else if (text.starts_with(":")) {
    return std::nullopt;  // single leading colon
  }

  while (!text.empty()) {
    if (!expect_group) {
      // After a group (or the initial "::") a separator or end is allowed.
      if (text[0] == ':') {
        text.remove_prefix(1);
        if (!text.empty() && text[0] == ':') {
          if (gap >= 0) return std::nullopt;  // second "::"
          gap = count;
          text.remove_prefix(1);
          if (text.empty()) break;
        }
        expect_group = true;
        continue;
      }
      return std::nullopt;
    }

    // Embedded IPv4 tail? Only valid as the last 32 bits.
    if (text.find('.') != std::string_view::npos &&
        text.find(':') == std::string_view::npos) {
      auto v4 = Ipv4Address::Parse(text);
      if (!v4 || count > 6) return std::nullopt;
      groups[static_cast<std::size_t>(count++)] =
          static_cast<std::uint16_t>(v4->bits() >> 16);
      groups[static_cast<std::size_t>(count++)] =
          static_cast<std::uint16_t>(v4->bits() & 0xffff);
      text = {};
      expect_group = false;
      break;
    }

    unsigned value = 0;
    int digits = 0;
    while (!text.empty()) {
      auto d = HexDigit(text[0]);
      if (!d) break;
      value = (value << 4) | static_cast<unsigned>(*d);
      ++digits;
      if (digits > 4) return std::nullopt;
      text.remove_prefix(1);
    }
    if (digits == 0) return std::nullopt;
    if (count >= 8) return std::nullopt;
    groups[static_cast<std::size_t>(count++)] =
        static_cast<std::uint16_t>(value);
    expect_group = false;
  }
  if (expect_group) return std::nullopt;  // trailing single colon

  if (gap < 0) {
    if (count != 8) return std::nullopt;
    return FromGroups(groups);
  }
  if (count >= 8) return std::nullopt;  // "::" must compress at least one zero

  std::array<std::uint16_t, 8> full{};
  for (int i = 0; i < gap; ++i) full[static_cast<std::size_t>(i)] =
      groups[static_cast<std::size_t>(i)];
  int tail = count - gap;
  for (int i = 0; i < tail; ++i) {
    full[static_cast<std::size_t>(8 - tail + i)] =
        groups[static_cast<std::size_t>(gap + i)];
  }
  return FromGroups(full);
}

std::string Ipv6Address::ToString() const {
  // RFC 5952: compress the longest run of >= 2 zero groups; first run wins
  // ties; lowercase hex without leading zeros.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(i) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && group(j) == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  out.reserve(41);
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i >= 8) return out;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    int n = std::snprintf(buf, sizeof buf, "%x", group(i));
    out.append(buf, static_cast<std::size_t>(n));
    ++i;
  }
  return out;
}

std::optional<IpAddress> IpAddress::Parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    if (auto v6 = Ipv6Address::Parse(text)) return IpAddress(*v6);
    return std::nullopt;
  }
  if (auto v4 = Ipv4Address::Parse(text)) return IpAddress(*v4);
  return std::nullopt;
}

std::string IpAddress::ToString() const {
  return is_v4() ? v4().ToString() : v6().ToString();
}

bool IpAddress::bit(int i) const {
  if (is_v4()) {
    return (v4().bits() >> (31 - i)) & 1u;
  }
  const auto& b = v6().bytes();
  return (b[static_cast<std::size_t>(i / 8)] >> (7 - i % 8)) & 1u;
}

std::size_t IpAddressHash::operator()(const IpAddress& a) const noexcept {
  // FNV-1a over the family tag and address bytes.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  if (a.is_v4()) {
    mix(4);
    for (auto byte : a.v4().ToBytes()) mix(byte);
  } else {
    mix(6);
    for (auto byte : a.v6().bytes()) mix(byte);
  }
  return static_cast<std::size_t>(h);
}

std::string Endpoint::ToString() const {
  if (address.is_v6()) {
    return "[" + address.ToString() + "]:" + std::to_string(port);
  }
  return address.ToString() + ":" + std::to_string(port);
}

}  // namespace clouddns::net
