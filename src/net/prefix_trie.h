// Binary radix trie keyed by CIDR prefixes with longest-prefix-match lookup.
//
// One trie holds one address family; PrefixMap below wraps a v4 and a v6 trie
// behind a family-agnostic interface. Nodes are stored contiguously in a
// vector and referenced by index, which keeps the structure cache-friendly
// and trivially copyable/movable.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ip.h"
#include "net/prefix.h"

namespace clouddns::net {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  /// Inserts (or overwrites) the value for an exact prefix.
  void Insert(const Prefix& prefix, Value value) {
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      bool bit = prefix.address().bit(depth);
      std::uint32_t child = bit ? nodes_[node].one : nodes_[node].zero;
      if (child == kNone) {
        child = static_cast<std::uint32_t>(nodes_.size());
        // Write the link before push_back: the reference into nodes_ must
        // not be held across a potential reallocation.
        (bit ? nodes_[node].one : nodes_[node].zero) = child;
        nodes_.push_back(Node{});
      }
      node = child;
    }
    if (!nodes_[node].value.has_value()) ++size_;
    nodes_[node].value = std::move(value);
  }

  /// Longest-prefix match: value of the most specific prefix containing
  /// `addr`, or nullopt when no prefix matches.
  [[nodiscard]] std::optional<Value> Lookup(const IpAddress& addr) const {
    std::optional<Value> best;
    std::size_t node = 0;
    int width = addr.bit_width();
    for (int depth = 0;; ++depth) {
      if (nodes_[node].value.has_value()) best = nodes_[node].value;
      if (depth >= width) break;
      std::uint32_t child =
          addr.bit(depth) ? nodes_[node].one : nodes_[node].zero;
      if (child == kNone) break;
      node = child;
    }
    return best;
  }

  /// Exact-prefix lookup (no covering-prefix fallback).
  [[nodiscard]] std::optional<Value> LookupExact(const Prefix& prefix) const {
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      std::uint32_t child =
          prefix.address().bit(depth) ? nodes_[node].one : nodes_[node].zero;
      if (child == kNone) return std::nullopt;
      node = child;
    }
    return nodes_[node].value;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Depth-first enumeration of every stored prefix, zero-branch first
  /// (i.e. ascending addresses). `fn` receives the prefix bits packed
  /// most-significant-first, the prefix length, and the value.
  template <typename Fn>
  void Visit(Fn&& fn) const {
    std::array<std::uint8_t, 16> bits{};
    VisitNode(0, bits, 0, fn);
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  template <typename Fn>
  void VisitNode(std::size_t node, std::array<std::uint8_t, 16>& bits,
                 int depth, Fn& fn) const {
    const Node& n = nodes_[node];
    if (n.value.has_value()) fn(bits, depth, *n.value);
    if (n.zero != kNone) VisitNode(n.zero, bits, depth + 1, fn);
    if (n.one != kNone) {
      auto byte = static_cast<std::size_t>(depth / 8);
      auto mask = static_cast<std::uint8_t>(1u << (7 - depth % 8));
      bits[byte] = static_cast<std::uint8_t>(bits[byte] | mask);
      VisitNode(n.one, bits, depth + 1, fn);
      bits[byte] = static_cast<std::uint8_t>(bits[byte] & ~mask);
    }
  }

  struct Node {
    std::uint32_t zero = kNone;
    std::uint32_t one = kNone;
    std::optional<Value> value;
  };

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

/// Family-agnostic longest-prefix-match map.
template <typename Value>
class PrefixMap {
 public:
  void Insert(const Prefix& prefix, Value value) {
    if (prefix.is_v4()) {
      v4_.Insert(prefix, std::move(value));
    } else {
      v6_.Insert(prefix, std::move(value));
    }
  }

  [[nodiscard]] std::optional<Value> Lookup(const IpAddress& addr) const {
    return addr.is_v4() ? v4_.Lookup(addr) : v6_.Lookup(addr);
  }

  [[nodiscard]] std::optional<Value> LookupExact(const Prefix& prefix) const {
    return prefix.is_v4() ? v4_.LookupExact(prefix) : v6_.LookupExact(prefix);
  }

  [[nodiscard]] std::size_t size() const { return v4_.size() + v6_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Every stored (prefix, value) pair, v4 before v6, ascending addresses
  /// within each family. Used to serialize tries into the dataset cache.
  [[nodiscard]] std::vector<std::pair<Prefix, Value>> Entries() const {
    std::vector<std::pair<Prefix, Value>> out;
    out.reserve(size());
    v4_.Visit([&out](const std::array<std::uint8_t, 16>& bits, int length,
                     const Value& value) {
      std::array<std::uint8_t, 4> b4{bits[0], bits[1], bits[2], bits[3]};
      out.emplace_back(Prefix(IpAddress(Ipv4Address::FromBytes(b4)), length),
                       value);
    });
    v6_.Visit([&out](const std::array<std::uint8_t, 16>& bits, int length,
                     const Value& value) {
      out.emplace_back(Prefix(IpAddress(Ipv6Address(bits)), length), value);
    });
    return out;
  }

 private:
  PrefixTrie<Value> v4_;
  PrefixTrie<Value> v6_;
};

}  // namespace clouddns::net
