// IPv4/IPv6 address value types with self-contained parsing and formatting.
//
// These deliberately avoid the platform's inet_pton/inet_ntop so the whole
// pipeline is portable and testable without socket headers, and so the
// formatter is deterministic (RFC 5952 canonical form for IPv6).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "base/lifetime.h"

namespace clouddns::net {

/// An IPv4 address held in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order_bits)
      : bits_(host_order_bits) {}
  /// Builds from the four dotted-quad octets, most significant first.
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("192.0.2.1"). Rejects leading zeros in
  /// multi-digit octets, out-of-range octets, and trailing garbage.
  static std::optional<Ipv4Address> Parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(bits_ >> (8 * (3 - i)));
  }

  /// Dotted-quad text form.
  [[nodiscard]] std::string ToString() const;

  /// Network-order bytes, most significant first.
  [[nodiscard]] std::array<std::uint8_t, 4> ToBytes() const;
  static Ipv4Address FromBytes(const std::array<std::uint8_t, 4>& bytes);

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// An IPv6 address as 16 network-order bytes.
class Ipv6Address {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr Ipv6Address() : bytes_{} {}
  constexpr explicit Ipv6Address(const Bytes& bytes) : bytes_(bytes) {}

  /// Builds from the eight 16-bit groups, most significant first.
  static Ipv6Address FromGroups(const std::array<std::uint16_t, 8>& groups);

  /// Parses RFC 4291 text forms, including "::" compression and embedded
  /// IPv4 tails ("::ffff:192.0.2.1").
  static std::optional<Ipv6Address> Parse(std::string_view text);

  [[nodiscard]] const Bytes& bytes() const CLOUDDNS_LIFETIMEBOUND {
    return bytes_;
  }
  [[nodiscard]] std::uint16_t group(int i) const {
    return static_cast<std::uint16_t>((bytes_[static_cast<std::size_t>(2 * i)]
                                       << 8) |
                                      bytes_[static_cast<std::size_t>(2 * i + 1)]);
  }

  /// RFC 5952 canonical text form (lowercase hex, longest zero run
  /// compressed, ties broken towards the first run).
  [[nodiscard]] std::string ToString() const;

  friend auto operator<=>(const Ipv6Address&, const Ipv6Address&) = default;

 private:
  Bytes bytes_;
};

/// Either family, as used by capture records and the AS database.
class IpAddress {
 public:
  IpAddress() : addr_(Ipv4Address{}) {}
  IpAddress(Ipv4Address v4) : addr_(v4) {}          // NOLINT(google-explicit-constructor)
  IpAddress(Ipv6Address v6) : addr_(std::move(v6)) {}  // NOLINT(google-explicit-constructor)

  /// Parses either family from text.
  static std::optional<IpAddress> Parse(std::string_view text);

  [[nodiscard]] bool is_v4() const {
    return std::holds_alternative<Ipv4Address>(addr_);
  }
  [[nodiscard]] bool is_v6() const { return !is_v4(); }

  [[nodiscard]] const Ipv4Address& v4() const {
    return std::get<Ipv4Address>(addr_);
  }
  [[nodiscard]] const Ipv6Address& v6() const {
    return std::get<Ipv6Address>(addr_);
  }

  [[nodiscard]] std::string ToString() const;

  /// Bit `i` (0 = most significant) of the address, for radix-trie walks.
  [[nodiscard]] bool bit(int i) const;
  /// 32 for IPv4, 128 for IPv6.
  [[nodiscard]] int bit_width() const { return is_v4() ? 32 : 128; }

  friend bool operator==(const IpAddress&, const IpAddress&) = default;
  friend auto operator<=>(const IpAddress&, const IpAddress&) = default;

 private:
  std::variant<Ipv4Address, Ipv6Address> addr_;
};

struct IpAddressHash {
  std::size_t operator()(const IpAddress& a) const noexcept;
};

/// A transport endpoint (address + port), used to label packet sources.
struct Endpoint {
  IpAddress address;
  std::uint16_t port = 0;

  [[nodiscard]] std::string ToString() const;
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

}  // namespace clouddns::net
