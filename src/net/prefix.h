// CIDR prefixes over either address family.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "net/ip.h"

namespace clouddns::net {

/// A network prefix in CIDR form. The stored address is always masked to the
/// prefix length, so two equal prefixes compare equal regardless of the host
/// bits they were built from.
class Prefix {
 public:
  Prefix() = default;
  Prefix(IpAddress address, int length);

  /// Parses "a.b.c.d/len" or "v6::/len". A bare address parses as a host
  /// prefix (/32 or /128).
  static std::optional<Prefix> Parse(std::string_view text);

  [[nodiscard]] const IpAddress& address() const { return address_; }
  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] bool is_v4() const { return address_.is_v4(); }

  /// True when `addr` falls inside this prefix (families must match).
  [[nodiscard]] bool Contains(const IpAddress& addr) const;
  /// True when `other` is equal to or more specific than this prefix.
  [[nodiscard]] bool Contains(const Prefix& other) const;

  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Prefix&, const Prefix&) = default;

 private:
  IpAddress address_;
  int length_ = 0;
};

/// Clears all bits of `addr` past the first `length` bits.
IpAddress MaskAddress(const IpAddress& addr, int length);

/// The `index`-th host address inside `prefix` (index 0 is the network
/// address). Used by fleet generators to mint resolver addresses. Wraps
/// within the host space if `index` exceeds it.
IpAddress HostInPrefix(const Prefix& prefix, std::uint64_t index);

}  // namespace clouddns::net
