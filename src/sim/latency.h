// Site-level latency model.
//
// The paper correlates Facebook's per-site IPv4/IPv6 RTT gap with query
// preference (Fig. 5). We model each resolver site and each authoritative
// anycast site as a point in an abstract 2-D "millisecond plane"; RTT is
// twice the Euclidean distance plus a per-site access delay, and a site can
// carry a *per-family penalty* to reproduce asymmetric v4/v6 paths (e.g. a
// v6 tunnel adding tens of ms).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace clouddns::sim {

using SiteId = std::uint32_t;

inline constexpr SiteId kNoSite = 0xffffffffu;

struct SiteSpec {
  std::string label;       ///< e.g. airport code "AMS", "SYD".
  double x = 0;            ///< Position in ms-plane.
  double y = 0;
  double access_delay_ms = 1.0;  ///< One-way last-mile delay.
  double v6_penalty_ms = 0.0;    ///< Extra one-way delay for IPv6 paths.
};

class LatencyModel {
 public:
  SiteId AddSite(SiteSpec spec);

  [[nodiscard]] const SiteSpec& site(SiteId id) const {
    return sites_[id];
  }
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

  /// Round-trip time between two sites in microseconds, for the given
  /// address family. Both sites' per-family penalties apply.
  [[nodiscard]] std::uint32_t RttUs(SiteId a, SiteId b, bool ipv6) const;

 private:
  std::vector<SiteSpec> sites_;
};

}  // namespace clouddns::sim
