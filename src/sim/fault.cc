#include "sim/fault.h"

namespace clouddns::sim {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t MixField(std::uint64_t hash, std::uint64_t value) {
  hash ^= value + 0x9e3779b97f4a7c15ull + (hash << 6) + (hash >> 2);
  return hash;
}

std::uint64_t HashWindow(std::uint64_t hash, const FaultWindow& window) {
  hash = MixField(hash, window.start);
  return MixField(hash, window.end);
}

std::uint64_t HashProbability(std::uint64_t hash, double p) {
  return MixField(hash, static_cast<std::uint64_t>(p * 1e9));
}

bool SiteMatches(SiteId rule_site, SiteId site) {
  return rule_site == kAnySite || rule_site == site;
}

bool TransportMatches(const std::optional<dns::Transport>& rule_transport,
                      dns::Transport transport) {
  return !rule_transport.has_value() || *rule_transport == transport;
}

/// Independent combination of loss probabilities from several matching
/// rules: surviving all of them is the product of the survivals.
void CombineLoss(double& accumulated, double p) {
  accumulated = 1.0 - (1.0 - accumulated) * (1.0 - p);
}

/// The decision key mixes everything that identifies one packet: site,
/// transport, arrival time, and the source endpoint (two resolutions at
/// the same instant come from different source ports). Retransmissions
/// happen at later times, so each retry flips a fresh coin.
std::uint64_t DecisionKey(SiteId site, dns::Transport transport, TimeUs now,
                          const net::Endpoint& src) {
  std::uint64_t key = static_cast<std::uint64_t>(site);
  key = key * kFnvPrime ^ (transport == dns::Transport::kTcp ? 0x7cbull : 0ull);
  key = key * kFnvPrime ^ now;
  key = key * kFnvPrime ^ net::IpAddressHash{}(src.address);
  key = key * kFnvPrime ^ static_cast<std::uint64_t>(src.port);
  return key;
}

}  // namespace

std::uint64_t HashFaultPlan(const FaultPlan& plan) {
  std::uint64_t hash = 0x4641554c54ull;  // "FAULT"
  hash = MixField(hash, plan.loss.size());
  for (const LossRule& rule : plan.loss) {
    hash = MixField(hash, rule.site);
    hash = MixField(hash, rule.transport.has_value()
                              ? 1 + static_cast<std::uint64_t>(*rule.transport)
                              : 0);
    hash = HashWindow(hash, rule.window);
    hash = HashProbability(hash, rule.query_loss);
    hash = HashProbability(hash, rule.response_loss);
  }
  hash = MixField(hash, plan.outages.size());
  for (const SiteOutage& outage : plan.outages) {
    hash = MixField(hash, outage.site);
    hash = HashWindow(hash, outage.window);
  }
  hash = MixField(hash, plan.spikes.size());
  for (const LatencySpike& spike : plan.spikes) {
    hash = MixField(hash, spike.site);
    hash = HashWindow(hash, spike.window);
    hash = HashProbability(hash, spike.rtt_multiplier);
    hash = MixField(hash, spike.extra_rtt_us);
  }
  hash = MixField(hash, plan.brownouts.size());
  for (const Brownout& brownout : plan.brownouts) {
    hash = MixField(hash, brownout.site);
    hash = HashWindow(hash, brownout.window);
    hash = HashProbability(hash, brownout.servfail_fraction);
    hash = MixField(hash, brownout.extra_rtt_us);
  }
  return hash;
}

bool FaultInjector::SiteWithdrawn(SiteId site, TimeUs now) const {
  for (const SiteOutage& outage : plan_.outages) {
    if (outage.site == site && outage.window.Contains(now)) return true;
  }
  return false;
}

FaultDecision FaultInjector::Evaluate(SiteId site, dns::Transport transport,
                                      TimeUs now,
                                      const net::Endpoint& src) const {
  FaultDecision decision;

  // Deterministic (coin-free) effects first.
  for (const LatencySpike& spike : plan_.spikes) {
    if (!SiteMatches(spike.site, site) || !spike.window.Contains(now)) {
      continue;
    }
    decision.rtt_multiplier *= spike.rtt_multiplier;
    decision.extra_rtt_us += spike.extra_rtt_us;
  }

  double query_loss = 0.0;
  double response_loss = 0.0;
  for (const LossRule& rule : plan_.loss) {
    if (!SiteMatches(rule.site, site) ||
        !TransportMatches(rule.transport, transport) ||
        !rule.window.Contains(now)) {
      continue;
    }
    CombineLoss(query_loss, rule.query_loss);
    CombineLoss(response_loss, rule.response_loss);
  }
  double servfail = 0.0;
  for (const Brownout& brownout : plan_.brownouts) {
    if (!SiteMatches(brownout.site, site) ||
        !brownout.window.Contains(now)) {
      continue;
    }
    CombineLoss(servfail, brownout.servfail_fraction);
    decision.extra_rtt_us += brownout.extra_rtt_us;
  }

  if (query_loss <= 0.0 && response_loss <= 0.0 && servfail <= 0.0) {
    return decision;
  }

  // One private generator per decision; the three coins are always drawn
  // in the same order so rule-set composition never re-aligns streams.
  Rng rng(SubstreamSeed(seed_, DecisionKey(site, transport, now, src)));
  const double query_coin = rng.NextDouble();
  const double servfail_coin = rng.NextDouble();
  const double response_coin = rng.NextDouble();
  if (query_coin < query_loss) {
    decision.lose_query = true;
    return decision;
  }
  decision.servfail = servfail_coin < servfail;
  decision.lose_response = response_coin < response_loss;
  return decision;
}

}  // namespace clouddns::sim
