// Deterministic random generation for the traffic simulator.
//
// Everything in the pipeline draws from Rng (xoshiro256**), seeded per
// scenario, so each table/figure is bit-reproducible run to run. The Zipf
// sampler models domain-popularity skew in client workloads.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace clouddns::sim {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as the authors recommend.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    auto rotl = [](std::uint64_t v, int k) {
      return (v << k) | (v >> (64 - k));
    };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to kill modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_[4];
};

/// Derives an independent substream seed from a base seed and a stream id
/// (SplitMix64 finalizer over the mixed pair). The parallel scenario engine
/// seeds every shard's generators with SubstreamSeed(base_seed, shard_id),
/// so shard streams are decorrelated yet fully determined by the base seed
/// — the scheduling of shards onto threads never touches the randomness.
[[nodiscard]] inline std::uint64_t SubstreamSeed(std::uint64_t base,
                                                std::uint64_t stream) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Samples indices 0..n-1 with probability proportional to the given
/// weights, in O(1) per draw (alias method).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  [[nodiscard]] std::size_t Sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Zipf(s) over ranks 1..n, built on the alias table (exact, O(1) draws).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Returns a rank index in [0, n).
  [[nodiscard]] std::size_t Sample(Rng& rng) const { return table_.Sample(rng); }
  [[nodiscard]] std::size_t size() const { return table_.size(); }

 private:
  DiscreteSampler table_;
};

}  // namespace clouddns::sim
