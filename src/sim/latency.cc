#include "sim/latency.h"

#include <cmath>

namespace clouddns::sim {

SiteId LatencyModel::AddSite(SiteSpec spec) {
  sites_.push_back(std::move(spec));
  return static_cast<SiteId>(sites_.size() - 1);
}

std::uint32_t LatencyModel::RttUs(SiteId a, SiteId b, bool ipv6) const {
  const SiteSpec& sa = sites_[a];
  const SiteSpec& sb = sites_[b];
  double dx = sa.x - sb.x;
  double dy = sa.y - sb.y;
  double one_way_ms = std::sqrt(dx * dx + dy * dy) + sa.access_delay_ms +
                      sb.access_delay_ms;
  if (ipv6) one_way_ms += sa.v6_penalty_ms + sb.v6_penalty_ms;
  double rtt_ms = 2.0 * one_way_ms;
  return static_cast<std::uint32_t>(rtt_ms * 1000.0);
}

}  // namespace clouddns::sim
