#include "sim/diurnal.h"

#include <algorithm>
#include <cmath>

namespace clouddns::sim {
namespace {
constexpr std::size_t kResolution = 4096;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

DiurnalWarp::DiurnalWarp(TimeUs window_start, TimeUs window_end,
                         double amplitude, double peak_hour)
    : start_(window_start),
      window_(window_end > window_start ? window_end - window_start : 1),
      amplitude_(std::clamp(amplitude, 0.0, 0.99)) {
  cdf_.resize(kResolution + 1);
  // Integrate the rate function over the window.
  const double days = static_cast<double>(window_) /
                      static_cast<double>(kMicrosPerDay);
  const double phase0 =
      static_cast<double>(window_start % kMicrosPerDay) /
      static_cast<double>(kMicrosPerDay);
  double accumulated = 0;
  cdf_[0] = 0;
  for (std::size_t k = 0; k < kResolution; ++k) {
    double x = (static_cast<double>(k) + 0.5) / kResolution;  // window frac
    double day_fraction = phase0 + x * days;
    double rate = 1.0 + amplitude_ * std::sin(2 * kPi *
                                              (day_fraction -
                                               peak_hour / 24.0 + 0.25));
    accumulated += rate;
    cdf_[k + 1] = accumulated;
  }
  for (auto& value : cdf_) value /= accumulated;
}

TimeUs DiurnalWarp::TimeOf(std::uint64_t index, std::uint64_t total) const {
  if (total == 0) return start_;
  double u = (static_cast<double>(index) + 0.5) / static_cast<double>(total);
  // Invert the CDF with binary search + linear interpolation.
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  std::size_t hi = static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(it - cdf_.begin(), 1, kResolution));
  double span = cdf_[hi] - cdf_[hi - 1];
  double within = span > 0 ? (u - cdf_[hi - 1]) / span : 0.0;
  double x = (static_cast<double>(hi - 1) + within) / kResolution;
  return start_ + static_cast<TimeUs>(x * static_cast<double>(window_));
}

}  // namespace clouddns::sim
