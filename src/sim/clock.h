// Simulation time: microseconds since the Unix epoch, plus the civil-date
// arithmetic the longitudinal analyses need (weekly capture windows,
// monthly buckets for the Q-min rollout study).
#pragma once

#include <cstdint>
#include <string>

namespace clouddns::sim {

/// Microseconds since 1970-01-01T00:00:00Z.
using TimeUs = std::uint64_t;

inline constexpr TimeUs kMicrosPerSecond = 1'000'000ull;
inline constexpr TimeUs kMicrosPerDay = 86'400ull * kMicrosPerSecond;

struct CivilDate {
  int year = 1970;
  unsigned month = 1;  ///< 1..12
  unsigned day = 1;    ///< 1..31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

/// Days since the epoch for a civil date (Howard Hinnant's algorithm;
/// valid across the whole simulated range).
[[nodiscard]] std::int64_t DaysFromCivil(const CivilDate& date);
[[nodiscard]] CivilDate CivilFromDays(std::int64_t days);

[[nodiscard]] TimeUs TimeFromCivil(const CivilDate& date);
[[nodiscard]] CivilDate CivilFromTime(TimeUs time);

/// "2020-04" style key, the Figure 3 monthly bucket.
[[nodiscard]] std::string MonthKey(TimeUs time);

/// "2020-04-05" rendering.
[[nodiscard]] std::string DateString(TimeUs time);

/// Month-key lookup that memoizes the current month's [start, end) range.
/// Capture streams are time-sorted, so consecutive records almost always
/// land in the same month and resolve without civil-date arithmetic.
class MonthBucketer {
 public:
  [[nodiscard]] const std::string& Key(TimeUs time) {
    if (time < lo_ || time >= hi_) Rebucket(time);
    return key_;
  }

 private:
  void Rebucket(TimeUs time);

  TimeUs lo_ = 0, hi_ = 0;  ///< Empty range: first call always rebuckets.
  std::string key_;
};

/// A monotonically advancing simulated clock.
class Clock {
 public:
  explicit Clock(TimeUs start) : now_(start) {}

  [[nodiscard]] TimeUs now() const { return now_; }
  void AdvanceTo(TimeUs t) {
    if (t > now_) now_ = t;
  }
  void Advance(TimeUs delta) { now_ += delta; }

 private:
  TimeUs now_;
};

}  // namespace clouddns::sim
