#include "sim/clock.h"

#include <cstdio>

namespace clouddns::sim {

std::int64_t DaysFromCivil(const CivilDate& date) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  int y = date.year;
  unsigned m = date.month;
  unsigned d = date.day;
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<std::int64_t>(era) * 146097 +
         static_cast<std::int64_t>(doe) - 719468;
}

CivilDate CivilFromDays(std::int64_t days) {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  return CivilDate{static_cast<int>(y + (m <= 2)), m, d};
}

TimeUs TimeFromCivil(const CivilDate& date) {
  return static_cast<TimeUs>(DaysFromCivil(date)) * kMicrosPerDay;
}

CivilDate CivilFromTime(TimeUs time) {
  return CivilFromDays(static_cast<std::int64_t>(time / kMicrosPerDay));
}

std::string MonthKey(TimeUs time) {
  CivilDate date = CivilFromTime(time);
  char buf[16];
  int n = std::snprintf(buf, sizeof buf, "%04d-%02u", date.year, date.month);
  return std::string(buf, static_cast<std::size_t>(n));
}

void MonthBucketer::Rebucket(TimeUs time) {
  CivilDate date = CivilFromTime(time);
  lo_ = TimeFromCivil({date.year, date.month, 1});
  hi_ = date.month == 12 ? TimeFromCivil({date.year + 1, 1, 1})
                         : TimeFromCivil({date.year, date.month + 1, 1});
  key_ = MonthKey(time);
}

std::string DateString(TimeUs time) {
  CivilDate date = CivilFromTime(time);
  char buf[16];
  int n = std::snprintf(buf, sizeof buf, "%04d-%02u-%02u", date.year,
                        date.month, date.day);
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace clouddns::sim
