#include "sim/network.h"

namespace clouddns::sim {

void Network::RegisterServer(const net::IpAddress& service, SiteId site,
                             PacketHandler& handler) {
  services_[service].push_back(Instance{site, &handler});
}

void Network::SetDefaultRoute(SiteId site, PacketHandler& handler) {
  default_route_ = Instance{site, &handler};
}

Network::SendResult Network::Query(const net::Endpoint& src, SiteId src_site,
                                   const net::IpAddress& dst,
                                   dns::Transport transport,
                                   const dns::WireBuffer& query, TimeUs now) {
  SendResult result;
  // Anycast catchment: the site with the lowest RTT from the source wins.
  // The family of the *destination service address* decides which latency
  // plane (v4 or v6) the packets traverse.
  const bool ipv6 = dst.is_v6();
  const Instance* best = nullptr;
  std::uint32_t best_rtt = 0;
  auto it = services_.find(dst);
  if (it != services_.end() && !it->second.empty()) {
    for (const Instance& instance : it->second) {
      std::uint32_t rtt = latency_.RttUs(src_site, instance.site, ipv6);
      if (best == nullptr || rtt < best_rtt) {
        best = &instance;
        best_rtt = rtt;
      }
    }
  } else if (default_route_.handler != nullptr) {
    best = &default_route_;
    best_rtt = latency_.RttUs(src_site, default_route_.site, ipv6);
  } else {
    return result;
  }

  PacketContext ctx;
  ctx.src = src;
  ctx.transport = transport;
  ctx.server_site = best->site;
  std::uint32_t total_rtt = best_rtt;
  if (transport == dns::Transport::kTcp) {
    // SYN/SYN-ACK/ACK before the query: one extra round trip, and the
    // server observes the handshake RTT.
    ctx.handshake_rtt_us = best_rtt;
    total_rtt += best_rtt;
  }
  ctx.time_us = now + total_rtt / 2;

  dns::WireBuffer response = best->handler->HandlePacket(ctx, query);
  if (response.empty()) return result;

  result.delivered = true;
  result.response = std::move(response);
  result.rtt_us = total_rtt;
  result.server_site = best->site;
  return result;
}

}  // namespace clouddns::sim
