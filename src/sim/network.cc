#include "sim/network.h"
// lint:hot-path — on the per-query serve/capture path (DESIGN.md §10).

namespace clouddns::sim {

void Network::RegisterServer(const net::IpAddress& service, SiteId site,
                             PacketHandler& handler) {
  services_[service].push_back(Instance{site, &handler});
}

void Network::SetDefaultRoute(SiteId site, PacketHandler& handler) {
  default_route_ = Instance{site, &handler};
}

void Network::Query(const net::Endpoint& src, SiteId src_site,
                    const net::IpAddress& dst, dns::Transport transport,
                    const dns::WireBuffer& query, TimeUs now,
                    SendResult& result) {
  result.status = SendStatus::kNoRoute;
  result.response.clear();
  result.rtt_us = 0;
  result.server_site = kNoSite;
  // Anycast catchment: the site with the lowest RTT from the source wins,
  // among sites a fault plan has not withdrawn. The family of the
  // *destination service address* decides which latency plane (v4 or v6)
  // the packets traverse.
  const bool ipv6 = dst.is_v6();
  const Instance* best = nullptr;
  std::uint32_t best_rtt = 0;
  auto it = services_.find(dst);
  if (it != services_.end() && !it->second.empty()) {
    for (const Instance& instance : it->second) {
      if (faults_ != nullptr && faults_->SiteWithdrawn(instance.site, now)) {
        continue;
      }
      std::uint32_t rtt = latency_.RttUs(src_site, instance.site, ipv6);
      if (best == nullptr || rtt < best_rtt) {
        best = &instance;
        best_rtt = rtt;
      }
    }
    if (best == nullptr) {
      // Every site of the service is withdrawn: packets black-hole.
      result.status = SendStatus::kTimeout;
      return;
    }
  } else if (default_route_.handler != nullptr) {
    if (faults_ != nullptr &&
        faults_->SiteWithdrawn(default_route_.site, now)) {
      result.status = SendStatus::kTimeout;
      return;
    }
    best = &default_route_;
    best_rtt = latency_.RttUs(src_site, default_route_.site, ipv6);
  } else {
    return;  // kNoRoute
  }

  FaultDecision fate;
  if (faults_ != nullptr) {
    fate = faults_->Evaluate(best->site, transport, now, src);
    best_rtt = static_cast<std::uint32_t>(
                   static_cast<double>(best_rtt) * fate.rtt_multiplier) +
               fate.extra_rtt_us;
  }
  if (fate.lose_query) {
    result.status = SendStatus::kLostQuery;
    result.server_site = best->site;
    return;
  }

  PacketContext ctx;
  ctx.src = src;
  ctx.transport = transport;
  ctx.server_site = best->site;
  ctx.brownout_servfail = fate.servfail;
  std::uint32_t total_rtt = best_rtt;
  if (transport == dns::Transport::kTcp) {
    // SYN/SYN-ACK/ACK before the query: one extra round trip, and the
    // server observes the handshake RTT.
    ctx.handshake_rtt_us = best_rtt;
    total_rtt += best_rtt;
  }
  ctx.time_us = now + total_rtt / 2;

  best->handler->HandlePacket(ctx, query, result.response);
  if (result.response.empty()) {
    result.status = SendStatus::kServerDropped;
    result.server_site = best->site;
    return;
  }
  if (fate.lose_response) {
    // The server answered (work done, exchange captured) but the reply
    // never makes it home; the sender sees no bytes.
    result.response.clear();
    result.status = SendStatus::kLostResponse;
    result.server_site = best->site;
    return;
  }

  result.status = SendStatus::kDelivered;
  result.rtt_us = total_rtt;
  result.server_site = best->site;
}

}  // namespace clouddns::sim
