// Deterministic fault injection for the simulated network.
//
// A FaultPlan is a declarative schedule of network pathologies — packet
// loss per direction/site/transport, anycast-site outages, latency spikes
// and server brownouts — and a FaultInjector turns it into per-packet
// decisions. The injector is STATELESS: every decision derives a private
// Rng from SubstreamSeed(seed, decision-key) where the key hashes the
// packet's (site, transport, time, source), so the same packet always
// draws the same fate regardless of which thread executes its shard, or
// how many other packets were evaluated before it. That is what lets a
// fault-enabled scenario keep the DESIGN.md §7 contract: byte-identical
// output for every thread count.
//
// Loss semantics (the part that matters for capture analysis):
//   - query loss drops the packet BEFORE the server: no server work, no
//     capture record, the resolver sees kLostQuery;
//   - response loss drops the packet AFTER the server answered: the
//     server did the work and the capture records the exchange, only the
//     resolver never hears back (kLostResponse). Retry traffic is
//     therefore visible to ENTRADA exactly as it was at the .nz
//     authoritatives during the Feb-2020 event (Fig. 3b).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dns/types.h"
#include "net/ip.h"
#include "sim/clock.h"
#include "sim/latency.h"
#include "sim/random.h"

namespace clouddns::sim {

/// Wildcard for rules that apply at every site.
inline constexpr SiteId kAnySite = 0xfffffffeu;

/// Half-open activity interval [start, end).
struct FaultWindow {
  TimeUs start = 0;
  TimeUs end = ~TimeUs{0};

  [[nodiscard]] bool Contains(TimeUs t) const { return t >= start && t < end; }
  friend bool operator==(const FaultWindow&, const FaultWindow&) = default;
};

/// Direction-aware packet loss toward (and back from) a site.
struct LossRule {
  SiteId site = kAnySite;
  /// Restrict to one transport; nullopt applies to both UDP and TCP.
  std::optional<dns::Transport> transport;
  FaultWindow window;
  double query_loss = 0.0;     ///< P(query never reaches the server).
  double response_loss = 0.0;  ///< P(response lost after server work).
  friend bool operator==(const LossRule&, const LossRule&) = default;
};

/// Anycast-site withdrawal: the site leaves every catchment for the
/// window (BGP withdraw / hard outage). Traffic re-routes to surviving
/// sites; a service with no surviving site black-holes (kTimeout).
struct SiteOutage {
  SiteId site = kNoSite;
  FaultWindow window;
  friend bool operator==(const SiteOutage&, const SiteOutage&) = default;
};

/// Congestion interval: inflates the path RTT toward a site.
struct LatencySpike {
  SiteId site = kAnySite;
  FaultWindow window;
  double rtt_multiplier = 1.0;
  std::uint32_t extra_rtt_us = 0;
  friend bool operator==(const LatencySpike&, const LatencySpike&) = default;
};

/// Server brownout: the site stays reachable but degrades — it answers
/// slowly and SERVFAILs a fraction of queries. Browned-out exchanges are
/// still captured (the server is up, just unhappy).
struct Brownout {
  SiteId site = kAnySite;
  FaultWindow window;
  double servfail_fraction = 0.0;
  std::uint32_t extra_rtt_us = 0;
  friend bool operator==(const Brownout&, const Brownout&) = default;
};

struct FaultPlan {
  std::vector<LossRule> loss;
  std::vector<SiteOutage> outages;
  std::vector<LatencySpike> spikes;
  std::vector<Brownout> brownouts;

  [[nodiscard]] bool empty() const {
    return loss.empty() && outages.empty() && spikes.empty() &&
           brownouts.empty();
  }
  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Order-sensitive 64-bit digest of a plan, for dataset-cache keys.
[[nodiscard]] std::uint64_t HashFaultPlan(const FaultPlan& plan);

/// The fate of one packet, combined over every matching rule.
struct FaultDecision {
  bool lose_query = false;
  bool lose_response = false;
  bool servfail = false;           ///< Brownout: answer SERVFAIL, capture.
  double rtt_multiplier = 1.0;
  std::uint32_t extra_rtt_us = 0;
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed)
      : plan_(std::move(plan)), seed_(seed) {}

  [[nodiscard]] bool enabled() const { return !plan_.empty(); }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// True when an outage window removes `site` from catchments at `now`.
  [[nodiscard]] bool SiteWithdrawn(SiteId site, TimeUs now) const;

  /// Decides the fate of one packet toward `site`. Pure function of the
  /// arguments, the plan, and the seed.
  [[nodiscard]] FaultDecision Evaluate(SiteId site, dns::Transport transport,
                                       TimeUs now,
                                       const net::Endpoint& src) const;

 private:
  FaultPlan plan_;
  std::uint64_t seed_;
};

}  // namespace clouddns::sim
