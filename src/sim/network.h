// The simulated network joining resolvers to authoritative servers.
//
// Real wire-format bytes flow through here: a resolver encodes an RFC 1035
// query, Network picks the anycast site (lowest RTT catchment, as BGP
// proximity approximates), hands the bytes to the server's PacketHandler,
// and returns the response bytes with transport-level timing. TCP costs an
// extra round trip for the handshake, and the server learns the measured
// handshake RTT — which is how the paper measures Facebook's per-site RTTs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dns/types.h"
#include "dns/wire.h"
#include "net/ip.h"
#include "sim/clock.h"
#include "sim/fault.h"
#include "sim/latency.h"

namespace clouddns::sim {

/// Metadata delivered to a server alongside the query bytes.
struct PacketContext {
  net::Endpoint src;
  dns::Transport transport = dns::Transport::kUdp;
  TimeUs time_us = 0;          ///< Arrival time at the server.
  std::uint32_t handshake_rtt_us = 0;  ///< TCP only: measured SYN/ACK RTT.
  SiteId server_site = kNoSite;        ///< Which anycast site caught it.
  /// Fault injection: the site is browned out and must SERVFAIL this
  /// query (the exchange is still real work and is still captured).
  bool brownout_servfail = false;
};

/// Implemented by authoritative servers. The response is written into a
/// caller-provided buffer (cleared before dispatch) so steady-state serving
/// reuses one buffer per network instead of allocating per packet; leaving
/// it empty means the packet was dropped (rate limiting, malformed, ...).
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void HandlePacket(const PacketContext& ctx,
                            const dns::WireBuffer& query,
                            dns::WireBuffer& response) = 0;

  /// Convenience wrapper returning a fresh buffer (tests, benches).
  dns::WireBuffer HandlePacket(const PacketContext& ctx,
                               const dns::WireBuffer& query) {
    dns::WireBuffer response;
    HandlePacket(ctx, query, response);
    return response;
  }
};

class Network {
 public:
  explicit Network(const LatencyModel& latency) : latency_(latency) {}

  /// Announces `service` from `site`, backed by `handler`. Multiple sites
  /// per service = anycast. The handler must outlive the network.
  void RegisterServer(const net::IpAddress& service, SiteId site,
                      PacketHandler& handler);

  /// Fallback for destinations without an explicit registration — stands in
  /// for the millions of second-level-domain authoritative servers whose
  /// traffic the study does not capture. `site` positions it for RTT.
  void SetDefaultRoute(SiteId site, PacketHandler& handler);

  /// Attaches a fault injector; nullptr (the default) is a lossless
  /// network. The injector is const and stateless, so one instance is
  /// safely shared by every shard's network.
  void SetFaultInjector(const FaultInjector* faults) { faults_ = faults; }

  /// Why a Query() did or did not produce a response.
  enum class SendStatus : std::uint8_t {
    kDelivered,      ///< Response bytes returned.
    kNoRoute,        ///< Destination is neither registered nor defaulted.
    kServerDropped,  ///< Server elected not to answer (RRL, malformed).
    kLostQuery,      ///< Fault: query lost in flight; no server work done.
    kLostResponse,   ///< Fault: response lost; server worked and captured.
    kTimeout,        ///< Fault: every anycast site withdrawn (black hole).
  };

  struct SendResult {
    SendStatus status = SendStatus::kNoRoute;
    dns::WireBuffer response;
    std::uint32_t rtt_us = 0;     ///< Total query->response time.
    SiteId server_site = kNoSite;

    [[nodiscard]] bool delivered() const {
      return status == SendStatus::kDelivered;
    }
    /// Fault outcomes look like a timeout to the sender: it learns
    /// nothing except that no answer came back.
    [[nodiscard]] bool timed_out() const {
      return status == SendStatus::kLostQuery ||
             status == SendStatus::kLostResponse ||
             status == SendStatus::kTimeout;
    }
  };

  /// Sends `query` from `src` (at `src_site`) to `dst` over `transport` at
  /// simulated time `now`, writing the outcome into `result`. The response
  /// buffer inside `result` is reused across calls (cleared, capacity
  /// kept), so a resolver's steady-state exchange never allocates.
  void Query(const net::Endpoint& src, SiteId src_site,
             const net::IpAddress& dst, dns::Transport transport,
             const dns::WireBuffer& query, TimeUs now, SendResult& result);

  /// Convenience wrapper returning a fresh SendResult.
  [[nodiscard]] SendResult Query(const net::Endpoint& src, SiteId src_site,
                                 const net::IpAddress& dst,
                                 dns::Transport transport,
                                 const dns::WireBuffer& query, TimeUs now) {
    SendResult result;
    Query(src, src_site, dst, transport, query, now, result);
    return result;
  }

  [[nodiscard]] std::size_t service_count() const { return services_.size(); }

 private:
  struct Instance {
    SiteId site;
    PacketHandler* handler;
  };

  const LatencyModel& latency_;
  const FaultInjector* faults_ = nullptr;
  std::unordered_map<net::IpAddress, std::vector<Instance>, net::IpAddressHash>
      services_;
  Instance default_route_{kNoSite, nullptr};
};

}  // namespace clouddns::sim
