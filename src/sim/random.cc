#include "sim/random.h"

#include <cmath>
#include <stdexcept>

namespace clouddns::sim {

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("DiscreteSampler: no weights");
  }
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("DiscreteSampler: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("DiscreteSampler: zero total");

  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's alias method.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    std::uint32_t s = small.back();
    small.pop_back();
    std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t DiscreteSampler::Sample(Rng& rng) const {
  std::size_t column = static_cast<std::size_t>(
      rng.NextBelow(static_cast<std::uint64_t>(prob_.size())));
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

namespace {
std::vector<double> ZipfWeights(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return weights;
}
}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : table_(ZipfWeights(n, exponent)) {}

}  // namespace clouddns::sim
