// Diurnal traffic shaping. Internet query volume follows day/night cycles
// (Quan et al. [35]; the paper picks whole capture weeks to average over
// them). DiurnalWarp maps a uniform query index onto wall-clock times
// whose instantaneous rate follows 1 + amplitude*sin(2*pi*(t - peak)),
// via an inverted piecewise CDF, keeping the sequence monotone.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/clock.h"

namespace clouddns::sim {

class DiurnalWarp {
 public:
  /// `amplitude` in [0, 1): 0 = uniform; 0.5 = 3:1 peak-to-trough ratio.
  /// `peak_hour` is the local hour of maximum rate.
  DiurnalWarp(TimeUs window_start, TimeUs window_end, double amplitude,
              double peak_hour = 15.0);

  /// Time of the i-th of `total` events; nondecreasing in `i`.
  [[nodiscard]] TimeUs TimeOf(std::uint64_t index, std::uint64_t total) const;

  [[nodiscard]] double amplitude() const { return amplitude_; }

 private:
  TimeUs start_;
  TimeUs window_;
  double amplitude_;
  /// cdf_[k] = fraction of the window's traffic before fraction k/N of the
  /// window's wall-clock time.
  std::vector<double> cdf_;
};

}  // namespace clouddns::sim
