// Builds resolver fleets: the per-provider farms of resolver backends and
// egress frontends, plus the ~37k-AS "rest of the Internet" population.
// Every frontend address is minted inside the provider's announced blocks
// so ENTRADA-style prefix->AS enrichment attributes it correctly, and every
// frontend gets a PTR record so the Fig. 5 reverse-DNS methodology works.
#pragma once

#include <memory>
#include <vector>

#include "cloud/providers.h"
#include "resolver/resolver.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/random.h"

namespace clouddns::cloud {

/// Airport codes of Facebook's 13 resolver sites (Fig. 5). Index 0 is the
/// dominant "Location 1" that sends no TCP.
[[nodiscard]] const std::vector<std::string>& FacebookSiteCodes();

struct FleetBuildContext {
  sim::LatencyModel* latency = nullptr;
  sim::Network* network = nullptr;
  std::vector<net::IpAddress> root_v4;
  std::vector<net::IpAddress> root_v6;
  /// Sites resolvers may be placed at (pre-created by the scenario).
  std::vector<sim::SiteId> resolver_sites;
  double fleet_scale = 0.01;
  std::uint64_t seed = 1;
  /// Ablation: build every engine with QNAME minimization disabled.
  bool qmin_off = false;
};

struct Fleet {
  Provider provider = Provider::kOther;
  std::vector<std::unique_ptr<resolver::RecursiveResolver>> engines;
  /// Client-load weight of each engine (drawn per client query).
  std::vector<double> engine_weights;
  /// Google only: which engines are the Public DNS service (Table 4).
  std::vector<bool> engine_is_public;
  /// Other-fleet only: the ASN each engine's host block was announced from.
  std::vector<net::Asn> engine_asns;
  double junk_fraction = 0.1;
  double client_weight = 1.0;
  /// PTR records for every frontend (the Fig. 5 rDNS substrate).
  std::vector<std::pair<net::IpAddress, dns::Name>> ptr_records;

  [[nodiscard]] std::size_t host_count() const;
};

/// Builds the fleet for one measured provider in one year.
[[nodiscard]] Fleet BuildProviderFleet(const ProviderProfile& profile,
                                       FleetBuildContext& ctx);

/// Builds the "rest of the Internet": `as_count` single-AS resolver
/// populations with heavy-tailed client load, mixed configurations, and
/// year-dependent validation/q-min adoption. Announces their blocks into
/// `asdb`.
[[nodiscard]] Fleet BuildOtherFleet(int year, std::size_t as_count,
                                    net::AsDatabase& asdb,
                                    FleetBuildContext& ctx);

}  // namespace clouddns::cloud
