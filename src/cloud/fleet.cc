#include "cloud/fleet.h"

#include <algorithm>
#include <cmath>

namespace clouddns::cloud {
namespace {

constexpr double kMinHostsPerEngine = 2;

std::string DashedV4(const net::Ipv4Address& addr) {
  std::string text = addr.ToString();
  for (char& c : text) {
    if (c == '.') c = '-';
  }
  return text;
}

/// Deterministically assigns one EDNS size to each engine so that the
/// engine-weight-weighted size distribution matches the profile's target
/// fractions (smallest sizes are packed onto the lightest engines first,
/// except pinned engines).
std::vector<std::uint16_t> AssignEdnsSizes(
    const std::vector<std::pair<std::uint16_t, double>>& sizes,
    const std::vector<double>& weights, int pinned_engine,
    std::uint16_t pinned_size) {
  const std::size_t n = weights.size();
  double total = 0;
  for (double w : weights) total += w;

  // Engines by ascending weight, skipping the pinned one.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) != pinned_engine) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&weights](std::size_t a, std::size_t b) {
    return weights[a] < weights[b];
  });

  // Sizes ascending by value; the largest size takes the remainder.
  auto sorted_sizes = sizes;
  std::sort(sorted_sizes.begin(), sorted_sizes.end());

  std::vector<std::uint16_t> assignment(n, sorted_sizes.back().first);
  if (pinned_engine >= 0) {
    assignment[static_cast<std::size_t>(pinned_engine)] = pinned_size;
  }
  std::size_t cursor = 0;
  for (std::size_t s = 0; s + 1 < sorted_sizes.size(); ++s) {
    double want = sorted_sizes[s].second * total;
    double got = 0;
    while (cursor < order.size() && got < want) {
      // Stop before an engine whose weight would overshoot the target by
      // more than stopping short would undershoot it.
      double w = weights[order[cursor]];
      if (got + w - want > want - got) break;
      assignment[order[cursor]] = sorted_sizes[s].first;
      got += w;
      ++cursor;
    }
  }
  return assignment;
}

/// Mints the h-th host address inside a block list, never repeating for
/// distinct indices (within the block capacity).
net::IpAddress MintAddress(const std::vector<net::Prefix>& blocks,
                           std::uint64_t index) {
  const net::Prefix& block = blocks[index % blocks.size()];
  // +1 skips the network address; hosts within a block are sequential,
  // which is how real farms look in practice.
  return net::HostInPrefix(block, 1 + index / blocks.size());
}

resolver::ResolverConfig BaseEngineConfig(const ProviderProfile& profile,
                                          const FleetBuildContext& ctx,
                                          sim::Rng& rng) {
  resolver::ResolverConfig config;
  config.validate_dnssec = profile.validate_dnssec;
  config.aggressive_nsec_caching = profile.aggressive_nsec;
  config.explicit_ds_fetch = profile.explicit_ds;
  config.v6_weight_multiplier = profile.v6_bias;
  config.seed = rng.Next();
  config.max_cache_entries = 1u << 18;
  (void)ctx;
  return config;
}

void MintHosts(resolver::ResolverConfig& config, const ProviderNetwork& network,
               const ProviderProfile& profile, std::size_t count,
               const std::vector<sim::SiteId>& sites, std::uint64_t& v4_counter,
               std::uint64_t& v6_counter, sim::Rng& rng, bool public_blocks) {
  auto is_public_block = [&network](const net::Prefix& p) {
    for (const auto& pub : network.public_dns_blocks) {
      if (pub.Contains(p) || p.Contains(pub)) return true;
    }
    return false;
  };
  // Public block lists mix families; split them. Non-public engines must
  // avoid the advertised public ranges or the Table 4 split would blur.
  std::vector<net::Prefix> v4s, v6s;
  if (public_blocks) {
    for (const auto& p : network.public_dns_blocks) {
      (p.is_v4() ? v4s : v6s).push_back(p);
    }
  } else {
    for (const auto& p : network.v4_blocks) {
      if (!is_public_block(p)) v4s.push_back(p);
    }
  }
  if (v6s.empty()) {
    for (const auto& p : network.v6_blocks) {
      if (public_blocks || !is_public_block(p)) v6s.push_back(p);
    }
  }
  for (std::size_t h = 0; h < count; ++h) {
    resolver::EgressHost host;
    host.v4 = MintAddress(v4s, v4_counter++);
    if (!v6s.empty() && rng.Bernoulli(profile.dual_stack_fraction)) {
      host.v6 = MintAddress(v6s, v6_counter++);
    }
    // Cloud farms egress from many metros per backend; spreading the
    // frontends smooths the fleet's anycast catchment, so which root
    // letter / ccTLD NS captures it is a weighted mix rather than an
    // all-or-nothing accident of one city.
    host.site = sites[h % sites.size()];
    config.hosts.push_back(std::move(host));
  }
}

void AddGenericPtrs(Fleet& fleet, const resolver::ResolverConfig& config,
                    std::string_view label, std::size_t engine_index) {
  std::size_t h = 0;
  for (const auto& host : config.hosts) {
    std::string name = "resolver" + std::to_string(h++) + "-e" +
                       std::to_string(engine_index) + "." +
                       std::string(label) + ".example";
    auto parsed = dns::Name::Parse(name);
    if (host.v4) fleet.ptr_records.emplace_back(*host.v4, *parsed);
    if (host.v6) fleet.ptr_records.emplace_back(*host.v6, *parsed);
  }
}

Fleet BuildFacebookFleet(const ProviderProfile& profile,
                         FleetBuildContext& ctx) {
  Fleet fleet;
  fleet.provider = Provider::kFacebook;
  fleet.junk_fraction = profile.junk_fraction;
  fleet.client_weight = profile.client_weight;
  sim::Rng rng(ctx.seed ^ 0xfacebull);

  const auto& codes = FacebookSiteCodes();
  // Location 1 dominates (Fig. 5a); tail sites fall off geometrically.
  std::vector<double> weights = {0.40, 0.09, 0.08, 0.07,  0.06, 0.055, 0.05,
                                 0.045, 0.04, 0.04, 0.035, 0.03, 0.025};
  // Location 1 sends no TCP: pin its EDNS to 4096 so nothing truncates.
  auto edns = AssignEdnsSizes(profile.edns_sizes, weights, /*pinned=*/0,
                              /*pinned_size=*/4096);

  const auto& network = NetworkOf(Provider::kFacebook);
  std::uint64_t v4_counter = 0, v6_counter = 0;
  std::size_t hosts = std::max<std::size_t>(
      static_cast<std::size_t>(kMinHostsPerEngine),
      static_cast<std::size_t>(
          static_cast<double>(profile.hosts_per_engine) * ctx.fleet_scale));

  for (std::size_t e = 0; e < codes.size(); ++e) {
    // Each site is its own latency point. Locations 8-10 (indices 7..9)
    // have materially worse IPv6 paths — the Fig. 5b correlation.
    sim::SiteSpec site;
    site.label = codes[e];
    site.x = 15.0 + 12.0 * static_cast<double>(e % 5);
    site.y = 10.0 * static_cast<double>(e % 4);
    site.access_delay_ms = 1.0;
    site.v6_penalty_ms = (e >= 7 && e <= 9) ? 32.0 : 0.0;
    sim::SiteId site_id = ctx.latency->AddSite(site);

    resolver::ResolverConfig config = BaseEngineConfig(profile, ctx, rng);
    config.edns_udp_size = edns[e];
    config.qname_minimization = profile.qname_minimization;
    config.qmin_enabled_at = profile.qmin_enabled_at;
    MintHosts(config, network, profile, hosts, {site_id}, v4_counter,
              v6_counter, rng, /*public_blocks=*/false);

    // PTR records: airport code + embedded IPv4 (12 of 13 sites; the last
    // site's names omit the address, defeating dual-stack matching there).
    std::size_t h = 0;
    for (const auto& host : config.hosts) {
      std::string label =
          e == codes.size() - 1
              ? "edge-dns-r" + std::to_string(h)
              : "edge-dns-" + DashedV4(host.v4->v4());
      auto name = dns::Name::Parse(label + "." + codes[e] + ".tfbnw.example");
      // Quirk from §4.3: a handful of addresses had no PTR at all.
      bool skip_v4 = e == 3 && h == 0;
      bool skip_v6 = (e == 5 || e == 6) && h == 0;
      if (host.v4 && !skip_v4) fleet.ptr_records.emplace_back(*host.v4, *name);
      if (host.v6 && !skip_v6) fleet.ptr_records.emplace_back(*host.v6, *name);
      ++h;
    }

    fleet.engines.push_back(std::make_unique<resolver::RecursiveResolver>(
        *ctx.network, std::move(config), ctx.root_v4, ctx.root_v6));
    fleet.engine_weights.push_back(weights[e]);
    fleet.engine_is_public.push_back(false);
  }
  return fleet;
}

}  // namespace

const std::vector<std::string>& FacebookSiteCodes() {
  static const std::vector<std::string> codes = {
      "atn", "ash", "dfw", "fra", "lhr", "ams", "sin",
      "hkg", "nrt", "syd", "gru", "ord", "sjc"};
  return codes;
}

std::size_t Fleet::host_count() const {
  std::size_t count = 0;
  for (const auto& engine : engines) count += engine->config().hosts.size();
  return count;
}

Fleet BuildProviderFleet(const ProviderProfile& profile,
                         FleetBuildContext& ctx) {
  if (profile.provider == Provider::kFacebook) {
    return BuildFacebookFleet(profile, ctx);
  }

  Fleet fleet;
  fleet.provider = profile.provider;
  fleet.junk_fraction = profile.junk_fraction;
  fleet.client_weight = profile.client_weight;
  sim::Rng rng(ctx.seed ^ (0x1000ull + static_cast<std::uint64_t>(
                                           profile.provider)));

  const auto& network = NetworkOf(profile.provider);
  const bool is_google = profile.provider == Provider::kGoogle;

  // Google is split into the Public DNS service and "the rest of its
  // infrastructure" (Table 4): the public side is ~15.6% of source
  // addresses but ~86.5% of queries, and is the part that validates and
  // deployed q-min.
  const std::size_t public_engines = is_google ? 5 : 0;
  constexpr double kPublicQueryShare = 0.91;  // calibrated: yields ~86.5% of
                                              // *captured* queries (Table 4)
  constexpr double kPublicResolverShare = 0.156;

  std::size_t total_hosts = std::max<std::size_t>(
      profile.engines * 2,
      static_cast<std::size_t>(static_cast<double>(profile.hosts_per_engine *
                                                   profile.engines) *
                               ctx.fleet_scale));

  std::vector<double> weights;
  for (std::size_t e = 0; e < profile.engines; ++e) {
    bool is_public = e < public_engines;
    if (is_google) {
      weights.push_back(is_public
                            ? kPublicQueryShare / static_cast<double>(
                                                      public_engines)
                            : (1.0 - kPublicQueryShare) /
                                  static_cast<double>(profile.engines -
                                                      public_engines));
    } else {
      weights.push_back(1.0);
    }
  }
  auto edns = AssignEdnsSizes(profile.edns_sizes, weights, -1, 0);

  std::uint64_t v4_counter = 0, v6_counter = 0;
  std::uint64_t public_v4_counter = 0, public_v6_counter = 0;
  std::size_t qmin_engines = static_cast<std::size_t>(
      std::ceil(profile.qmin_engine_fraction *
                static_cast<double>(profile.engines)));

  for (std::size_t e = 0; e < profile.engines; ++e) {
    bool is_public = e < public_engines;
    resolver::ResolverConfig config = BaseEngineConfig(profile, ctx, rng);
    config.edns_udp_size = edns[e];
    if (is_google) {
      // The public service validates and minimizes; the internal
      // infrastructure does neither (its DS share is what dilutes
      // Google's DNSSEC signal in Fig. 2).
      config.validate_dnssec = is_public;
      config.qname_minimization = is_public && profile.qname_minimization;
      config.qmin_enabled_at = profile.qmin_enabled_at;
    } else {
      config.qname_minimization =
          profile.qname_minimization && e < qmin_engines;
      config.qmin_enabled_at = profile.qmin_enabled_at;
    }

    // Spread engines around the globe (stride keeps consecutive engines
    // apart); geographic clustering would bias which authoritative NSes
    // (and therefore which *captured* NSes) a fleet lands on.
    // Each backend egresses from a handful of metros spread by stride.
    std::vector<sim::SiteId> engine_sites;
    for (std::size_t k = 0; k < 5; ++k) {
      engine_sites.push_back(
          ctx.resolver_sites[(e * 5 + k * 3 + 1) % ctx.resolver_sites.size()]);
    }
    std::size_t hosts;
    if (is_google) {
      std::size_t public_hosts = std::max<std::size_t>(
          2, static_cast<std::size_t>(kPublicResolverShare *
                                      static_cast<double>(total_hosts)));
      hosts = is_public
                  ? std::max<std::size_t>(2, public_hosts / public_engines)
                  : std::max<std::size_t>(
                        2, (total_hosts - public_hosts) /
                               (profile.engines - public_engines));
    } else {
      hosts = std::max<std::size_t>(2, total_hosts / profile.engines);
    }
    MintHosts(config, network, profile, hosts, engine_sites,
              is_public ? public_v4_counter : v4_counter,
              is_public ? public_v6_counter : v6_counter, rng, is_public);

    AddGenericPtrs(fleet, config,
                   is_public ? "public-dns.google"
                             : std::string(ToString(profile.provider)),
                   e);
    fleet.engines.push_back(std::make_unique<resolver::RecursiveResolver>(
        *ctx.network, std::move(config), ctx.root_v4, ctx.root_v6));
    fleet.engine_weights.push_back(weights[e]);
    fleet.engine_is_public.push_back(is_public);
  }
  return fleet;
}

Fleet BuildOtherFleet(int year, std::size_t as_count, net::AsDatabase& asdb,
                      FleetBuildContext& ctx) {
  Fleet fleet;
  fleet.provider = Provider::kOther;
  ProviderProfile base = ProfileFor(Provider::kOther, year);
  fleet.junk_fraction = base.junk_fraction;
  fleet.client_weight = base.client_weight;
  sim::Rng rng(ctx.seed ^ 0x07e4ull);

  const int yi = year - 2018;
  const double validate_p = 0.15 + 0.05 * yi;
  const double qmin_p = 0.08 + 0.15 * yi;

  for (std::size_t i = 0; i < as_count; ++i) {
    net::Asn asn = 100000 + static_cast<net::Asn>(i);
    asdb.AddAs(asn, "ISP-" + std::to_string(i));
    net::Prefix v4_block(
        net::Ipv4Address(37, static_cast<std::uint8_t>(i / 256),
                         static_cast<std::uint8_t>(i % 256), 0),
        24);
    net::Ipv6Address::Bytes v6_bytes{};
    v6_bytes[0] = 0x2a;
    v6_bytes[1] = 0x00;
    v6_bytes[2] = static_cast<std::uint8_t>(i >> 8);
    v6_bytes[3] = static_cast<std::uint8_t>(i);
    net::Prefix v6_block(net::Ipv6Address(v6_bytes), 32);
    asdb.Announce(v4_block, asn);
    asdb.Announce(v6_block, asn);

    resolver::ResolverConfig config;
    config.validate_dnssec = rng.Bernoulli(validate_p);
    config.explicit_ds_fetch = config.validate_dnssec && rng.Bernoulli(0.3);
    // RFC 8198 adoption among validating ISP resolvers grows slowly.
    config.aggressive_nsec_caching =
        config.validate_dnssec && rng.Bernoulli(0.04 + 0.07 * yi);
    config.qname_minimization = !ctx.qmin_off && rng.Bernoulli(qmin_p);
    config.seed = rng.Next();
    config.max_cache_entries = 1u << 14;
    // EDNS: mixed deployment; a tail still runs EDNS-less stub-era code.
    double roll = rng.NextDouble();
    if (roll < 0.05) {
      config.edns_udp_size = 0;
    } else if (roll < 0.17) {
      config.edns_udp_size = 512;
    } else if (roll < 0.45) {
      config.edns_udp_size = 1232;
    } else {
      config.edns_udp_size = 4096;
    }

    // Heavy-tailed population: most ASes run a couple of resolvers; the
    // biggest ISPs run hundreds.
    double u = rng.NextDouble() + 1e-9;
    std::size_t hosts = 1 + std::min<std::size_t>(
                                260, static_cast<std::size_t>(
                                         2.5 / std::pow(u, 0.72)) -
                                         2);
    sim::SiteId site = ctx.resolver_sites[static_cast<std::size_t>(
        rng.NextBelow(ctx.resolver_sites.size()))];
    double dual_fraction = base.dual_stack_fraction;
    for (std::size_t h = 0; h < hosts; ++h) {
      resolver::EgressHost host;
      host.v4 = net::HostInPrefix(v4_block, 1 + h);
      if (rng.Bernoulli(dual_fraction)) {
        host.v6 = net::HostInPrefix(v6_block, 1 + h);
      }
      host.site = site;
      config.hosts.push_back(std::move(host));
    }
    AddGenericPtrs(fleet, config, "isp" + std::to_string(i), i);

    fleet.engines.push_back(std::make_unique<resolver::RecursiveResolver>(
        *ctx.network, std::move(config), ctx.root_v4, ctx.root_v6));
    // Zipf-ish client load so a few ISPs dominate, as the paper observes
    // at B-Root (Indian/French/Indonesian ISPs above the first CP).
    fleet.engine_weights.push_back(
        1.0 / std::pow(static_cast<double>(i + 1), 0.85));
    fleet.engine_is_public.push_back(false);
    fleet.engine_asns.push_back(asn);
  }
  return fleet;
}

}  // namespace clouddns::cloud
