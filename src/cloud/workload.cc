#include "cloud/workload.h"

#include <stdexcept>

#include "zone/zone_builder.h"

namespace clouddns::cloud {
namespace {

std::vector<double> SuffixWeights(const WorkloadSpec& spec) {
  std::vector<double> weights;
  weights.reserve(spec.suffixes.size());
  for (const auto& suffix : spec.suffixes) weights.push_back(suffix.weight);
  return weights;
}

std::vector<double> QtypeWeights(const WorkloadSpec& spec) {
  std::vector<double> weights;
  weights.reserve(spec.qtype_mix.size());
  for (const auto& [type, weight] : spec.qtype_mix) weights.push_back(weight);
  return weights;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)),
      rng_(seed),
      suffix_sampler_(SuffixWeights(spec_)),
      qtype_sampler_(QtypeWeights(spec_)) {
  if (spec_.suffixes.empty()) {
    throw std::invalid_argument("WorkloadGenerator: no suffixes");
  }
  for (const auto& suffix : spec_.suffixes) {
    domain_samplers_.emplace_back(std::max<std::size_t>(1, suffix.domain_count),
                                  spec_.zipf_exponent);
  }
  for (const auto& [type, weight] : spec_.qtype_mix) qtypes_.push_back(type);
}

dns::Name WorkloadGenerator::RandomLabelName(std::size_t min_len,
                                             std::size_t max_len,
                                             const dns::Name& suffix) {
  std::size_t len = min_len + rng_.NextBelow(max_len - min_len + 1);
  std::string label;
  label.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    label += static_cast<char>('a' + rng_.NextBelow(26));
  }
  return suffix.Child(label);
}

void WorkloadGenerator::InjectTargets(std::vector<dns::Name> targets,
                                      double probability) {
  injected_ = std::move(targets);
  injected_probability_ = probability;
}

void WorkloadGenerator::ClearInjection() {
  injected_.clear();
  injected_probability_ = 0.0;
}

ClientQuery WorkloadGenerator::Next() {
  ClientQuery query;

  if (!injected_.empty() && rng_.Bernoulli(injected_probability_)) {
    query.qname =
        injected_[rng_.NextBelow(injected_.size())].Child("www");
    query.qtype =
        rng_.Bernoulli(0.5) ? dns::RrType::kA : dns::RrType::kAaaa;
    return query;
  }

  if (spec_.chromium_fraction > 0 &&
      rng_.Bernoulli(spec_.chromium_fraction)) {
    // Chromium's network probes: random 7-15 character single labels that
    // cannot exist, hammering the root with NXDOMAIN [19][42].
    query.qname = RandomLabelName(7, 15, dns::Name{});
    query.qtype = dns::RrType::kA;
    return query;
  }

  std::size_t suffix_index = suffix_sampler_.Sample(rng_);
  const SuffixPopulation& population = spec_.suffixes[suffix_index];

  if (rng_.Bernoulli(spec_.junk_fraction)) {
    // Typos / stale names: unregistered under a real suffix -> NXDOMAIN at
    // the TLD. Random labels never collide with "<stem><i>".
    query.qname = RandomLabelName(6, 12, population.suffix);
    query.qtype = qtypes_[qtype_sampler_.Sample(rng_)];
    return query;
  }

  std::size_t rank = domain_samplers_[suffix_index].Sample(rng_);
  dns::Name domain = population.suffix.Child(
      zone::DomainLabel(population.stem, rank));

  // Host shape: mostly www/apex, some service hosts, a tail of arbitrary
  // labels (device names, subdomain-per-customer setups, ...).
  double roll = rng_.NextDouble();
  if (roll < 0.42) {
    query.qname = domain.Child("www");
  } else if (roll < 0.62) {
    query.qname = domain;  // apex
  } else if (roll < 0.72) {
    query.qname = domain.Child("mail");
  } else if (roll < 0.80) {
    query.qname = domain.Child("api");
  } else if (roll < 0.86) {
    query.qname = domain.Child("cdn").Child("assets");
  } else {
    query.qname = RandomLabelName(4, 10, domain);
  }
  query.qtype = qtypes_[qtype_sampler_.Sample(rng_)];
  return query;
}

}  // namespace clouddns::cloud
