// The five cloud/content providers of the study (paper Table 1), their
// autonomous systems and address blocks, and per-year behaviour profiles
// transcribed from the paper's measurements (Tables 4-6, Figures 2-6).
//
// The profiles are *inputs to the mechanism*, not outputs: e.g. we set
// "Facebook: 30% of frontends advertise EDNS 512" (Fig. 6) and the 17%
// truncation / 14% TCP shares must then EMERGE from resolver+server logic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/asdb.h"
#include "sim/clock.h"

namespace clouddns::cloud {

enum class Provider {
  kGoogle,
  kAmazon,
  kMicrosoft,
  kFacebook,
  kCloudflare,
  kOther,
};

[[nodiscard]] std::string_view ToString(Provider provider);

/// All five measured providers, in the paper's Table 1 order.
[[nodiscard]] const std::vector<Provider>& MeasuredProviders();

struct ProviderNetwork {
  Provider provider = Provider::kOther;
  std::vector<net::Asn> ases;              ///< Paper Table 1.
  bool runs_public_dns = false;
  /// Address blocks the provider's resolvers egress from; the fleet
  /// builder mints host addresses inside these.
  std::vector<net::Prefix> v4_blocks;
  std::vector<net::Prefix> v6_blocks;
  /// Blocks advertised as the *public DNS service* (Google: the ranges in
  /// its published FAQ). Subset of the blocks above. Used by Table 4.
  std::vector<net::Prefix> public_dns_blocks;
};

[[nodiscard]] const ProviderNetwork& NetworkOf(Provider provider);

/// Registers every provider AS + announcement into an AS database.
void RegisterProviderAses(net::AsDatabase& asdb);

/// Behaviour profile for one provider in one capture year.
struct ProviderProfile {
  Provider provider = Provider::kOther;
  int year = 2020;

  /// Number of resolver backends (shared caches) and frontends per backend
  /// at full scale; the fleet builder multiplies by the scenario scale.
  std::size_t engines = 4;
  std::size_t hosts_per_engine = 400;

  /// Fraction of frontends that are dual-stack (v4+v6). Together with the
  /// per-site RTT preference this determines the Table 5/6 v4:v6 splits.
  double dual_stack_fraction = 0.0;

  /// Multiplier on the IPv6 side of the dual-stack preference (1.0 =
  /// purely RTT-driven). Encodes operator policy like Facebook's
  /// "prefer v6 when not slower".
  double v6_bias = 1.0;

  bool validate_dnssec = false;
  /// Explicit DS probing at the parent (Cloudflare's signature, Fig. 2d).
  bool explicit_ds = false;
  /// Aggressive NSEC caching (RFC 8198); §4.2.3 links its deployment to
  /// the 2020 drop in cloud junk at the root.
  bool aggressive_nsec = false;
  /// How much of the Chromium-style random-name junk flows through this
  /// provider's resolvers. ISP resolvers (kOther) carry the browser
  /// population (1.0); datacenter fleets see mostly machine junk.
  double root_junk_multiplier = 1.0;
  bool qname_minimization = false;
  /// When q-min switches on (0 = since before the window). Google:
  /// Dec 2019 (§4.2.1).
  sim::TimeUs qmin_enabled_at = 0;
  /// Fraction of engines that run q-min at all (Amazon's partial rollout).
  double qmin_engine_fraction = 1.0;

  /// Distribution of advertised EDNS(0) sizes across frontends:
  /// {size, weight}. size 0 = no EDNS. Drives Fig. 6 and the TCP shares.
  std::vector<std::pair<std::uint16_t, double>> edns_sizes;

  /// Client-workload shaping (see workload.h): share of client queries
  /// that target names that do not exist (junk, Fig. 4).
  double junk_fraction = 0.06;

  /// Relative client-query load this provider's fleet receives; calibrated
  /// against the Fig. 1 per-provider shares.
  double client_weight = 1.0;
};

/// The calibrated profile for (provider, vantage-year). Vantage differences
/// (e.g. Google's larger share of .nl than .nz) are applied by the
/// scenario on top of these via client-weight multipliers.
[[nodiscard]] ProviderProfile ProfileFor(Provider provider, int year);

}  // namespace clouddns::cloud
