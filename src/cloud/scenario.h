// Dataset scenarios: one RunScenario() call reproduces one cell of the
// paper's Table 3 — a capture week at .nl, .nz, or B-Root in 2018/2019/
// 2020 — by building the zones, authoritative servers, provider fleets and
// client workload for that vantage/year and streaming the client queries
// through the full resolver/network/server stack. Everything the analysis
// layer needs (captures, AS database, PTR records, the Google public-DNS
// ranges) comes back in the ScenarioResult.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "capture/record.h"
#include "capture/sharded.h"
#include "cloud/providers.h"
#include "net/asdb.h"
#include "net/prefix_trie.h"
#include "sim/clock.h"
#include "sim/fault.h"

namespace clouddns::cloud {

enum class Vantage { kNl, kNz, kRoot };

/// Canned fault schedules, materialized against the scenario's site list
/// and capture window in MaterializeFaults(). `faults` in ScenarioConfig
/// can extend or replace them with hand-built rules.
enum class FaultPreset {
  kNone,
  /// The vantage provider loses its four busiest anycast sites for the
  /// middle third of the window (withdrawal, BGP-style: traffic re-routes
  /// to surviving sites).
  kProviderSiteOutage,
  /// Persistent lossy transit: 25% query / 15% response loss on every UDP
  /// path for the whole window.
  kLossyPath,
  /// All sites browned out: half of all queries answered SERVFAIL with
  /// +300 ms of added latency, whole window.
  kRootBrownout,
  /// The Feb 3-27 2020 .nz event as a load problem: response-heavy loss
  /// during the cyclic-dependency weeks. Queries still reach (and are
  /// captured by) the .nz servers; the lost answers drive the resolver
  /// retry engine, amplifying the TLD's observed traffic (Fig. 3b).
  kNzEventLoss,
};

[[nodiscard]] std::string_view ToString(Vantage vantage);

/// Start of the paper's capture window for a vantage/year (Table 2/3).
[[nodiscard]] sim::TimeUs WeekStart(Vantage vantage, int year);
/// Window length: one week for the ccTLDs, one DITL day for B-Root.
[[nodiscard]] sim::TimeUs WindowLength(Vantage vantage);

struct ScenarioConfig {
  Vantage vantage = Vantage::kNl;
  int year = 2020;
  /// Client queries streamed through the resolvers (upstream traffic is
  /// whatever cache misses produce). Scaled-down from the paper's billions.
  std::uint64_t client_queries = 400'000;
  /// Zone size scale vs the paper's Table 2 (5.9M .nl domains, ...).
  double zone_scale = 0.002;
  /// Resolver fleet scale vs the paper's Tables 4/6 source counts.
  double fleet_scale = 0.01;
  /// "Other AS" population scale vs the paper's ~37-42k ASes.
  double as_scale = 0.01;
  std::uint64_t seed = 20201027;
  /// Worker threads executing the simulation shards (0 = use
  /// hardware_concurrency, overridable via CLOUDDNS_THREADS). Output is
  /// bit-identical for every thread count — see `shards`.
  std::size_t threads = 0;
  /// Number of simulation shards the client population is partitioned
  /// into. Each shard owns a disjoint slice of the resolver engines, its
  /// own authoritative-server instances (caches/RRL are shard-local), and
  /// a seed substream derived as SubstreamSeed(seed, shard_id). The shard
  /// count — never the thread count — determines the traffic realization,
  /// so results depend on (seed, shards) only and any `threads` value
  /// replays the identical simulation.
  std::size_t shards = 16;
  /// Cache-warmup traffic streamed in the day before the capture window
  /// opens (as a fraction of client_queries). Real resolvers enter the
  /// week with warm caches; without this, one-time TLD discovery floods
  /// short windows with maintenance queries. Warmup captures are dropped.
  double warmup_fraction = 0.30;
  /// Day/night traffic modulation (0 = flat; 0.45 gives the ~2.5:1
  /// peak-to-trough swing typical of national TLD traffic [35]).
  double diurnal_amplitude = 0.45;

  /// Longitudinal override of the capture window (Fig. 3).
  std::optional<sim::TimeUs> window_start;
  std::optional<sim::TimeUs> window_end;
  /// Fig. 3 mode: only Google's fleet issues queries.
  bool google_only = false;
  /// Fig. 3b: inject the Feb-2020 .nz cyclic-dependency misconfiguration.
  bool inject_cyclic_event = false;
  /// What-if knob: scales every measured provider's client load relative
  /// to the AS long tail (1.0 = the calibrated 2018-2020 world). Used to
  /// project how the Fig. 1 concentration responds to further
  /// consolidation.
  double consolidation_factor = 1.0;
  /// Ablation: disable QNAME minimization on every engine.
  bool qmin_override_off = false;
  /// Ablation: disable response rate limiting on the TLD servers.
  bool rrl_override_off = false;

  /// Hand-built fault schedule (loss, outages, spikes, brownouts). Applied
  /// on top of `fault_preset`. Faults change the traffic realization, so
  /// both fields participate in the dataset cache key — but only when
  /// non-empty, keeping every fault-free key (and cache) unchanged.
  sim::FaultPlan faults;
  FaultPreset fault_preset = FaultPreset::kNone;
};

/// Resolver-side robustness totals summed over every engine in the run:
/// how much extra upstream work the fault schedule induced.
struct RobustnessCounters {
  std::uint64_t upstream_queries = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failovers = 0;
  std::uint64_t served_stale = 0;
  friend bool operator==(const RobustnessCounters&,
                         const RobustnessCounters&) = default;
};

struct ServerMeta {
  std::uint32_t id = 0;
  std::string label;
  bool captured = false;
  bool anycast = true;
  std::size_t sites = 1;
};

struct ScenarioResult {
  ScenarioConfig config;
  sim::TimeUs window_start = 0;
  sim::TimeUs window_end = 0;

  /// Captured records from every captured server, still partitioned by
  /// simulation shard (each shard buffer time-ordered). Scan shard-wise
  /// where possible; Flatten() yields the single time-ordered stream under
  /// the (time, shard) merge contract when an export truly needs it.
  capture::ShardedCapture records;

  std::size_t zone_domain_count = 0;   ///< Registered domains (Table 2).
  /// Registered domains per TLD ("nl" -> count), for Table 2.
  std::map<std::string, std::size_t> zone_domains_by_tld;
  std::vector<ServerMeta> servers;     ///< NS set (Table 2).

  net::AsDatabase asdb;                ///< For source->AS enrichment.
  net::PrefixMap<bool> google_public;  ///< Advertised public ranges (Tab 4).
  /// PTR records of every resolver frontend (Fig. 5 rDNS substrate).
  std::vector<std::pair<net::IpAddress, dns::Name>> ptr_records;

  std::uint64_t client_queries_issued = 0;
  std::uint64_t leaf_queries = 0;      ///< Uncaptured SLD-auth traffic.
  RobustnessCounters robustness;       ///< Fleet-wide retry/timeout totals.
  /// Storage-integrity events from the dataset cache's self-healing load
  /// path: corrupt artifacts detected, quarantined, rebuilt from
  /// simulation, and re-verified (DESIGN.md §14). All zero on a clean
  /// warm or cold load.
  base::io::StorageCounters storage;
  /// Client queries routed to each provider's fleet (calibration aid).
  std::map<std::string, std::uint64_t> client_queries_per_provider;
};

[[nodiscard]] ScenarioResult RunScenario(const ScenarioConfig& config);

/// Provider attribution used by all analyses: source address -> provider
/// via the AS database (Table 1 ASes), everything else kOther.
[[nodiscard]] Provider ProviderOfAsn(net::Asn asn);

}  // namespace clouddns::cloud
