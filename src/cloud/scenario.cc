#include "cloud/scenario.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>

#include "base/phase.h"
#include "base/threads.h"
#include "capture/merge.h"
#include "cloud/fleet.h"
#include "sim/diurnal.h"
#include "cloud/workload.h"
#include "server/auth_server.h"
#include "server/leaf_auth.h"
#include "sim/network.h"
#include "zone/dnssec.h"
#include "zone/zone_builder.h"

namespace clouddns::cloud {
namespace {

dns::Name N(const std::string& text) { return *dns::Name::Parse(text); }

/// World cities for the latency plane (coordinates in the abstract
/// millisecond plane; distances approximate great-circle delay ratios).
struct City {
  const char* label;
  double x, y;
};
constexpr City kCities[] = {
    {"AMS", 0, 0},    {"FRA", 4, 3},    {"LHR", -4, 1},  {"CDG", -1, 4},
    {"IAD", -42, 8},  {"ORD", -50, 4},  {"SJC", -70, 9}, {"GRU", -48, 52},
    {"JNB", 18, 58},  {"BOM", 42, 28},  {"SIN", 60, 34}, {"HKG", 66, 24},
    {"NRT", 78, 12},  {"SYD", 88, 46},  {"AKL", 98, 52}, {"WLG", 99, 55},
};

sim::TimeUs DayStart(int year, unsigned month, unsigned day) {
  return sim::TimeFromCivil({year, month, day});
}

/// The Fig. 3b .nz cyclic-dependency event window (Feb 3-27 2020); used by
/// both the workload injection and the kNzEventLoss fault preset.
sim::TimeUs NzEventStart() { return DayStart(2020, 2, 3); }
sim::TimeUs NzEventEnd() { return DayStart(2020, 2, 27); }

/// Blueprint of one authoritative service: its config, the zones it
/// serves, and where it is anycast. Every shard instantiates its own
/// AuthServer from this, so mutable server state (RRL buckets, capture
/// buffer) stays shard-local while the zone data is shared read-only.
struct ServiceSpec {
  server::AuthServerConfig config;
  std::vector<std::shared_ptr<const zone::Zone>> zones;
  std::vector<std::pair<net::IpAddress, sim::SiteId>> registrations;
  ServerMeta meta;
};

/// Everything one simulation shard mutates. Shards never touch each
/// other's state, so the schedule loop runs lock-free.
struct ShardWorld {
  std::unique_ptr<sim::Network> network;
  std::vector<std::unique_ptr<server::AuthServer>> servers;
  std::unique_ptr<server::LeafAuthService> leaf;
  /// One generator per fleet, seeded from SubstreamSeed(seed, shard).
  std::vector<std::unique_ptr<WorkloadGenerator>> workloads;
  capture::CaptureBuffer records;
  std::uint64_t issued = 0;
  std::vector<std::uint64_t> issued_per_fleet;
};

/// Everything a scenario builds; kept alive for the duration of Run().
class ScenarioRuntime {
 public:
  explicit ScenarioRuntime(const ScenarioConfig& config);
  ScenarioResult Run();

 private:
  void BuildSites();
  void MaterializeFaults();
  void BuildZonesAndServers();
  void BuildShardWorlds();
  void BuildFleets();
  void PartitionEngines();
  void RunShard(std::size_t shard);

  zone::Zone BuildRootZone();

  ScenarioConfig config_;
  sim::TimeUs start_ = 0;
  sim::TimeUs end_ = 0;
  std::size_t shard_count_ = 1;

  sim::LatencyModel latency_;
  std::vector<sim::SiteId> city_sites_;

  std::vector<std::shared_ptr<const zone::Zone>> zones_;
  std::vector<ServiceSpec> service_specs_;

  net::AsDatabase asdb_;
  net::PrefixMap<bool> google_public_;

  std::vector<Fleet> fleets_;
  std::vector<WorkloadSpec> fleet_specs_;
  std::vector<double> fleet_weights_;
  /// engine_owner_[fleet][engine] -> shard that executes its queries.
  std::vector<std::vector<std::size_t>> engine_owner_;

  std::vector<ShardWorld> shards_;

  /// Materialized fault schedule and its injector. The injector is
  /// stateless/const after construction, so all shards share one instance;
  /// decisions key on (site, transport, time, source), never on shard.
  sim::FaultPlan fault_plan_;
  std::unique_ptr<sim::FaultInjector> injector_;

  std::size_t zone_domain_count_ = 0;
  std::map<std::string, std::size_t> zone_domains_by_tld_;
  std::vector<net::IpAddress> root_v4_, root_v6_;
  std::map<std::string, std::vector<zone::NameserverSpec>> tld_ns_sets_;

  // Fig. 3b cyclic event: the two broken .nz domains.
  std::vector<dns::Name> cyclic_domains_;
};

ScenarioRuntime::ScenarioRuntime(const ScenarioConfig& config)
    : config_(config) {
  start_ = config_.window_start.value_or(
      WeekStart(config_.vantage, config_.year));
  end_ = config_.window_end.value_or(start_ + WindowLength(config_.vantage));
  shard_count_ = std::max<std::size_t>(1, config_.shards);
}

void ScenarioRuntime::BuildSites() {
  for (const City& city : kCities) {
    city_sites_.push_back(
        latency_.AddSite({city.label, city.x, city.y, 1.0, 0.0}));
  }
}

void ScenarioRuntime::MaterializeFaults() {
  fault_plan_ = config_.faults;
  const sim::FaultWindow whole{start_, end_};
  switch (config_.fault_preset) {
    case FaultPreset::kNone:
      break;
    case FaultPreset::kProviderSiteOutage: {
      // Withdraw the four busiest (first) sites for the middle third of
      // the window; anycast re-routes their catchments elsewhere.
      const sim::TimeUs third = (end_ - start_) / 3;
      const sim::FaultWindow middle{start_ + third, end_ - third};
      for (std::size_t s = 0; s < 4 && s < city_sites_.size(); ++s) {
        fault_plan_.outages.push_back({city_sites_[s], middle});
      }
      break;
    }
    case FaultPreset::kLossyPath: {
      sim::LossRule rule;
      rule.transport = dns::Transport::kUdp;
      rule.window = whole;
      rule.query_loss = 0.25;
      rule.response_loss = 0.15;
      fault_plan_.loss.push_back(rule);
      break;
    }
    case FaultPreset::kRootBrownout: {
      sim::Brownout rule;
      rule.window = whole;
      rule.servfail_fraction = 0.5;
      rule.extra_rtt_us = 300'000;
      fault_plan_.brownouts.push_back(rule);
      break;
    }
    case FaultPreset::kNzEventLoss: {
      // Clamp the event weeks to the simulated window; outside them the
      // plane is healthy. The loss is response-heavy on purpose: queries
      // still reach (and are captured by) the servers, but the answers
      // die in transit, so every retransmit lands in the capture — the
      // traffic-creating failure mode behind the Fig. 3b spike.
      sim::LossRule rule;
      rule.transport = dns::Transport::kUdp;
      rule.window = {std::max(start_, NzEventStart()),
                     std::min(end_, NzEventEnd())};
      rule.query_loss = 0.05;
      rule.response_loss = 0.60;
      if (rule.window.start < rule.window.end) {
        fault_plan_.loss.push_back(rule);
      }
      break;
    }
  }
  if (!fault_plan_.empty()) {
    injector_ = std::make_unique<sim::FaultInjector>(
        fault_plan_, sim::SubstreamSeed(config_.seed, 0xfa17ull));
  }
}

/// Builds the (unsigned) root zone image; signing happens with the other
/// zones in BuildZonesAndServers' serial stage.
zone::Zone ScenarioRuntime::BuildRootZone() {
  zone::ZoneBuildConfig config;
  config.apex = dns::Name{};
  config.negative_ttl = 86400;  // the real root zone's SOA MINIMUM
  config.nameservers = {};
  for (std::size_t letter = 0; letter < root_v4_.size(); ++letter) {
    zone::NameserverSpec spec;
    spec.name = N(std::string(1, static_cast<char>('a' + letter)) +
                  ".root-servers.example");
    spec.addresses = {root_v4_[letter], root_v6_[letter]};
    config.nameservers.push_back(std::move(spec));
  }
  auto root = zone::MakeZoneSkeleton(config);

  // Delegate the ccTLDs with their *full* NS sets so resolvers spread
  // load over every authoritative server (the study captures two of
  // .nl's and six of .nz's).
  for (const auto& [tld, ns_set] : tld_ns_sets_) {
    zone::AddDelegation(root, N(tld), ns_set,
                        /*with_ds=*/true, /*ttl=*/172800);
  }

  // Generic TLDs for root-vantage workload breadth. Their nameservers live
  // in unregistered space, so the default-route leaf service answers for
  // them — the study never captures TLD-side traffic at those.
  if (config_.vantage == Vantage::kRoot) {
    for (int i = 0; i < 120; ++i) {
      std::string tld = "tld" + std::to_string(i);
      zone::AddDelegation(
          root, N(tld),
          {{N("ns1.nic." + tld),
            {net::IpAddress(net::Ipv4Address(
                 0x65400000u + static_cast<std::uint32_t>(i) * 8)),
             net::IpAddress(*net::Ipv6Address::Parse(
                 "2001:db9:" + std::to_string(i) + "::53"))}}},
          i % 2 == 0, /*ttl=*/172800);
    }
  }
  return root;
}

void ScenarioRuntime::BuildZonesAndServers() {
  const int year_index0 = config_.year - 2018;
  // ccTLD NS sets (Table 2) are needed up front: the root zone's
  // delegations carry them as glue.
  auto make_ns_set = [this](const std::string& tld, std::size_t ns_total,
                            const std::string& v4_stem,
                            const std::string& v6_stem) {
    std::vector<zone::NameserverSpec> ns_set;
    for (std::size_t s = 0; s < ns_total; ++s) {
      zone::NameserverSpec spec;
      spec.name = N("ns" + std::to_string(s + 1) + ".dns." + tld);
      spec.addresses = {
          *net::IpAddress::Parse(v4_stem + std::to_string(s + 1)),
          *net::IpAddress::Parse(v6_stem + std::to_string(s + 1))};
      ns_set.push_back(std::move(spec));
    }
    tld_ns_sets_[tld] = ns_set;
    return ns_set;
  };
  make_ns_set("nl", year_index0 == 2 ? 3 : 4, "194.0.28.", "2001:678:2c::");
  make_ns_set("nz", 7, "197.0.29.", "2001:dce:2c::");

  // --- Root service: 13 letters; letter B (index 1) is the captured
  // vantage for kRoot scenarios. Anycast footprint of B grows over the
  // years (§3: B-Root added sites between 2018 and 2020).
  const std::size_t letters = config_.vantage == Vantage::kRoot ? 13 : 2;
  for (std::size_t letter = 0; letter < letters; ++letter) {
    root_v4_.push_back(net::IpAddress(net::Ipv4Address(
        198, 41, static_cast<std::uint8_t>(letter), 4)));
    root_v6_.push_back(*net::IpAddress::Parse(
        "2001:500:" + std::to_string(letter + 1) + "::53"));
  }

  // --- Sizing for the ccTLD images (Table 2), needed before the parallel
  // build stage so every task is fully parameterized up front.
  const int yi = config_.year - 2018;
  const double zs = config_.zone_scale;
  const std::size_t nl_domains =
      static_cast<std::size_t>((yi == 2 ? 5.9e6 : 5.8e6) * zs);
  const std::size_t nl_ns = yi == 2 ? 3 : 4;  // Table 2
  const std::size_t nz_second = static_cast<std::size_t>(140e3 * zs);
  const std::size_t nz_third =
      static_cast<std::size_t>((yi == 0 ? 580e3 : 570e3) * zs);
  const std::vector<std::string> nz_subzones = {"co", "net", "org", "ac",
                                                "govt"};
  const std::size_t nz_per_subzone = nz_third / nz_subzones.size();

  // --- Stage A: build every zone image in parallel. The tasks are
  // independent — each writes only its own slot, reads only the
  // already-final ns sets / root hints — and each image's record sequence
  // is a pure function of its parameters, so the fan-out cannot change
  // any zone's bytes (DESIGN.md §14). Signing is deliberately NOT here:
  // one zone (the .nl apex) dominates that cost, so SignZone parallelizes
  // internally in the serial stage below instead.
  auto build_apex = [this](const std::string& tld, std::size_t second_level) {
    zone::ZoneBuildConfig apex_config;
    apex_config.apex = N(tld);
    apex_config.nameservers = tld_ns_sets_.at(tld);
    auto apex_zone = zone::MakeZoneSkeleton(apex_config);
    zone::PopulateDelegations(apex_zone, second_level, "dom", 0.55,
                              net::Ipv4Address(100, 70, 0, 0));
    if (tld == "nz") {
      // The Fig. 3b misconfiguration: two domains whose NS records point
      // into each other's zones with no glue — a cyclic dependency [31]
      // that resolvers can never break out of.
      zone::AddDelegation(apex_zone, N("cyca.nz"), {{N("ns.cycb.nz"), {}}},
                          false);
      zone::AddDelegation(apex_zone, N("cycb.nz"), {{N("ns.cyca.nz"), {}}},
                          false);
    }
    return apex_zone;
  };
  const std::size_t kRootSlot = 0;
  const std::size_t kNlApexSlot = 1;
  const std::size_t kNzApexSlot = 2;
  const std::size_t kNzSubBase = 3;
  std::vector<std::function<zone::Zone()>> builders(kNzSubBase +
                                                    nz_subzones.size());
  builders[kRootSlot] = [this] { return BuildRootZone(); };
  builders[kNlApexSlot] = [&build_apex, nl_domains] {
    return build_apex("nl", nl_domains);
  };
  builders[kNzApexSlot] = [&build_apex, nz_second] {
    return build_apex("nz", nz_second);
  };
  for (std::size_t sub = 0; sub < nz_subzones.size(); ++sub) {
    builders[kNzSubBase + sub] = [this, &nz_subzones, sub, nz_per_subzone] {
      zone::ZoneBuildConfig sub_config;
      sub_config.apex = N(nz_subzones[sub] + ".nz");
      sub_config.nameservers = tld_ns_sets_.at("nz");
      auto sub_zone = zone::MakeZoneSkeleton(sub_config);
      // Glue base 100.72.0.0 + one /16 per subzone, matching the serial
      // builder's running increment.
      zone::PopulateDelegations(
          sub_zone, nz_per_subzone, "dom", 0.55,
          net::Ipv4Address(0x64480000u +
                           static_cast<std::uint32_t>(sub) * 0x10000u));
      return sub_zone;
    };
  }
  std::vector<std::optional<zone::Zone>> images(builders.size());
  base::ThreadPool::Shared().ParallelFor(
      builders.size(), base::EffectiveThreads(config_.threads),
      [&](std::size_t i) { images[i].emplace(builders[i]()); });

  // --- Stage B: serial signing and assembly, in the exact order of the
  // serial builder — zones_/service_specs_ ordering and every zone's Add
  // sequence (skeleton, delegations, DNSKEYs, RRSIGs) are unchanged.
  // SignZone fans its signature computation over the pool internally.
  zone::Zone root = std::move(*images[kRootSlot]);
  zone::SignZone(root);
  auto root_zone = std::make_shared<const zone::Zone>(std::move(root));
  zones_.push_back(root_zone);

  for (std::size_t letter = 0; letter < letters; ++letter) {
    ServiceSpec spec;
    spec.config.server_id = 100 + static_cast<std::uint32_t>(letter);
    spec.config.name =
        std::string(1, static_cast<char>('a' + letter)) + "-root";
    bool captured = config_.vantage == Vantage::kRoot && letter == 1;
    spec.config.capture_enabled = captured;
    spec.zones = {root_zone};

    // Root letters are heavily anycast; B grows its footprint over the
    // study years (§3), which widens its catchment relative to peers.
    std::size_t site_count = letter == 1 ? (yi == 0 ? 4u : (yi == 1 ? 6u : 9u))
                                         : 6u;
    for (std::size_t s = 0; s < site_count; ++s) {
      sim::SiteId site =
          city_sites_[(letter * 3 + s * 5) % city_sites_.size()];
      spec.registrations.emplace_back(root_v4_[letter], site);
      spec.registrations.emplace_back(root_v6_[letter], site);
    }
    spec.meta = {spec.config.server_id, spec.config.name, captured,
                 true, site_count};
    service_specs_.push_back(std::move(spec));
  }

  // --- ccTLD signing, assembly, and servers.
  auto assemble_cctld = [this](const std::string& tld, zone::Zone apex_zone,
                               std::vector<zone::Zone> sub_zones,
                               const std::vector<std::string>& subzones,
                               std::size_t second_level,
                               std::size_t per_subzone, std::size_t ns_total,
                               std::size_t ns_captured,
                               std::size_t unicast_index) {
    const std::vector<zone::NameserverSpec>& ns_set = tld_ns_sets_.at(tld);

    // Second-level registry zones (co.nz style) are delegated from the
    // apex and served by the same operator.
    std::vector<std::shared_ptr<const zone::Zone>> operator_zones;
    for (std::size_t sub = 0; sub < subzones.size(); ++sub) {
      zone::AddDelegation(apex_zone, N(subzones[sub] + "." + tld), ns_set,
                          /*with_ds=*/true);
      zone::SignZone(sub_zones[sub]);
      operator_zones.push_back(
          std::make_shared<const zone::Zone>(std::move(sub_zones[sub])));
      zone_domain_count_ += per_subzone;
      zone_domains_by_tld_[tld] += per_subzone;
    }
    zone_domain_count_ += second_level;
    zone_domains_by_tld_[tld] += second_level;
    zone::SignZone(apex_zone);
    operator_zones.insert(
        operator_zones.begin(),
        std::make_shared<const zone::Zone>(std::move(apex_zone)));
    for (const auto& zone : operator_zones) zones_.push_back(zone);

    bool vantage_match =
        (config_.vantage == Vantage::kNl && tld == "nl") ||
        (config_.vantage == Vantage::kNz && tld == "nz");
    for (std::size_t s = 0; s < ns_total; ++s) {
      ServiceSpec spec;
      spec.config.server_id = static_cast<std::uint32_t>(s);
      spec.config.name = tld + "-" +
                         std::string(1, static_cast<char>('A' + s));
      spec.config.capture_enabled = vantage_match && s < ns_captured;
      spec.config.rrl.enabled = !config_.rrl_override_off;
      spec.config.rrl.responses_per_second = 400;
      spec.config.rrl.burst = 1200;
      spec.zones = operator_zones;

      // The ccTLD NS sets are broadly anycast ("distributed across a
      // dozen global locations", 2.1.1); a wide footprint also keeps the
      // captured-subset sampling unbiased across resolver fleets.
      bool anycast = s != unicast_index;
      std::size_t site_count = anycast ? 11 : 1;
      for (std::size_t at = 0; at < site_count; ++at) {
        sim::SiteId site =
            city_sites_[(s * 7 + at * 3 + (tld == "nz" ? 13 : 0)) %
                        city_sites_.size()];
        spec.registrations.emplace_back(ns_set[s].addresses[0], site);
        spec.registrations.emplace_back(ns_set[s].addresses[1], site);
      }
      spec.meta = {spec.config.server_id, spec.config.name,
                   spec.config.capture_enabled, anycast, site_count};
      service_specs_.push_back(std::move(spec));
    }
  };

  // Both ccTLDs always exist (root-vantage clients also look them up);
  // only the vantage TLD captures.
  assemble_cctld("nl", std::move(*images[kNlApexSlot]), {}, {}, nl_domains,
                 0, nl_ns, 2, /*unicast=*/99);
  std::vector<zone::Zone> nz_subs;
  nz_subs.reserve(nz_subzones.size());
  for (std::size_t sub = 0; sub < nz_subzones.size(); ++sub) {
    nz_subs.push_back(std::move(*images[kNzSubBase + sub]));
  }
  // Table 2: 6 anycast + 1 unicast NSes; the analyzed six are five of
  // the anycast servers plus the unicast one.
  assemble_cctld("nz", std::move(*images[kNzApexSlot]), std::move(nz_subs),
                 nz_subzones, nz_second, nz_per_subzone, 7, 6, /*unicast=*/5);

  // Fig. 3b: two .nz domains with mutually glueless (cyclic) delegations.
  if (config_.inject_cyclic_event || config_.vantage == Vantage::kNz) {
    cyclic_domains_ = {N("cyca.nz"), N("cycb.nz")};
  }
}

void ScenarioRuntime::BuildShardWorlds() {
  shards_.resize(shard_count_);
  for (ShardWorld& shard : shards_) {
    shard.network = std::make_unique<sim::Network>(latency_);
    for (const ServiceSpec& spec : service_specs_) {
      auto server = std::make_unique<server::AuthServer>(spec.config);
      for (const auto& zone : spec.zones) server->Serve(zone);
      for (const auto& [address, site] : spec.registrations) {
        shard.network->RegisterServer(address, site, *server);
      }
      shard.servers.push_back(std::move(server));
    }
    shard.leaf =
        std::make_unique<server::LeafAuthService>(server::LeafAuthConfig{});
    shard.network->SetDefaultRoute(city_sites_[4], *shard.leaf);
    shard.network->SetFaultInjector(injector_.get());
  }
}

void ScenarioRuntime::BuildFleets() {
  RegisterProviderAses(asdb_);
  for (const auto& prefix : NetworkOf(Provider::kGoogle).public_dns_blocks) {
    google_public_.Insert(prefix, true);
  }

  FleetBuildContext ctx;
  ctx.latency = &latency_;
  // Engines are constructed against shard 0's network, then re-attached
  // to their owner shard's plane in PartitionEngines().
  ctx.network = shards_[0].network.get();
  // Root hints: the captured study uses the full 13-letter set.
  ctx.root_v4 = root_v4_;
  ctx.root_v6 = root_v6_;
  ctx.resolver_sites = city_sites_;
  ctx.fleet_scale = config_.fleet_scale;
  ctx.seed = config_.seed;
  ctx.qmin_off = config_.qmin_override_off;

  for (Provider provider : MeasuredProviders()) {
    ProviderProfile profile = ProfileFor(provider, config_.year);
    profile.client_weight *= config_.consolidation_factor;
    if (config_.qmin_override_off) profile.qname_minimization = false;
    // Google's market penetration differs between the countries (§4.1):
    // its .nz share is roughly 60% of its .nl share.
    if (provider == Provider::kGoogle && config_.vantage == Vantage::kNz) {
      profile.client_weight *= 0.55;
    }
    // §4.1: at the root the first CP ranks only 5th behind large ISPs —
    // B-Root's catchment covers regions where cloud penetration is lower.
    if (config_.vantage == Vantage::kRoot) {
      const int yi = config_.year - 2018;
      profile.client_weight *= yi == 0 ? 0.26 : (yi == 1 ? 0.48 : 1.70);
      // Google's public service reaches the widest population; by 2020 it
      // is the single largest cloud AS at the root (§4.1: rank 5 overall).
      if (provider == Provider::kGoogle) {
        profile.client_weight *= yi == 0 ? 1.0 : (yi == 1 ? 1.2 : 2.0);
      }
    }
    if (config_.google_only && provider != Provider::kGoogle) {
      profile.client_weight = 0;
    }
    fleets_.push_back(BuildProviderFleet(profile, ctx));
  }

  if (!config_.google_only) {
    std::size_t as_count = static_cast<std::size_t>(
        (config_.vantage == Vantage::kRoot ? 46000 : 39000) *
        config_.as_scale);
    fleets_.push_back(BuildOtherFleet(config_.year, as_count, asdb_, ctx));
  }

  // Per-vantage junk level calibrated against Table 3's valid ratios:
  // .nl stays ~86-90% valid; .nz is junkier (66-81% valid, §3); B-Root's
  // junk comes from the chromium fraction below instead.
  const int year_index = config_.year - 2018;
  double vantage_junk = 1.0;
  if (config_.vantage == Vantage::kNl) {
    vantage_junk = year_index == 0 ? 0.55 : (year_index == 1 ? 0.58 : 0.72);
  } else if (config_.vantage == Vantage::kNz) {
    vantage_junk = year_index == 0 ? 1.95 : (year_index == 1 ? 1.10 : 2.15);
  }
  for (Fleet& fleet : fleets_) {
    WorkloadSpec spec;
    spec.junk_fraction = std::min(0.9, fleet.junk_fraction * vantage_junk);
    if (config_.vantage == Vantage::kNl) {
      spec.suffixes = {{N("nl"),
                        static_cast<std::size_t>(
                            (config_.year == 2020 ? 5.9e6 : 5.8e6) *
                            config_.zone_scale),
                        1.0, "dom"}};
    } else if (config_.vantage == Vantage::kNz) {
      std::size_t second = static_cast<std::size_t>(140e3 * config_.zone_scale);
      std::size_t per_sub = static_cast<std::size_t>(
          (config_.year == 2018 ? 580e3 : 570e3) * config_.zone_scale / 5);
      spec.suffixes = {{N("nz"), second, 0.25, "dom"},
                       {N("co.nz"), per_sub, 0.45, "dom"},
                       {N("net.nz"), per_sub, 0.10, "dom"},
                       {N("org.nz"), per_sub, 0.10, "dom"},
                       {N("ac.nz"), per_sub, 0.06, "dom"},
                       {N("govt.nz"), per_sub, 0.04, "dom"}};
    } else {
      // Root vantage: interest spreads over many TLDs; the ccTLDs are a
      // small slice of the world.
      spec.suffixes = {{N("nl"), static_cast<std::size_t>(5.8e6 *
                                                          config_.zone_scale),
                        0.04, "dom"},
                       {N("nz"), static_cast<std::size_t>(140e3 *
                                                          config_.zone_scale),
                        0.01, "dom"}};
      for (int i = 0; i < 120; ++i) {
        spec.suffixes.push_back(
            {N("tld" + std::to_string(i)),
             static_cast<std::size_t>(40e3 * config_.zone_scale) + 20,
             1.0 / std::pow(i + 2.0, 0.8), "dom"});
      }
      // Chromium random-TLD probes ramp up across the study (§3). The
      // bulk of the browser population sits behind ISP resolvers; cloud
      // fleets mostly see machine-generated junk, per-provider scaled.
      const int yi = config_.year - 2018;
      double base_chromium = yi == 0 ? 0.38 : (yi == 1 ? 0.22 : 0.38);
      double multiplier =
          fleet.provider == Provider::kOther
              ? 1.0
              : ProfileFor(fleet.provider, config_.year).root_junk_multiplier;
      spec.chromium_fraction = base_chromium * multiplier;
    }
    fleet_specs_.push_back(std::move(spec));
    fleet_weights_.push_back(fleet.client_weight);
  }
}

void ScenarioRuntime::PartitionEngines() {
  // Round-robin over a global engine counter balances engine counts per
  // shard even when individual fleets are small. The owner map depends
  // only on the build (never on threads), so each engine's cache sees its
  // queries in the same order for every thread count.
  std::size_t counter = 0;
  engine_owner_.resize(fleets_.size());
  for (std::size_t f = 0; f < fleets_.size(); ++f) {
    engine_owner_[f].resize(fleets_[f].engines.size());
    for (std::size_t e = 0; e < fleets_[f].engines.size(); ++e) {
      std::size_t owner = counter++ % shard_count_;
      engine_owner_[f][e] = owner;
      fleets_[f].engines[e]->AttachNetwork(*shards_[owner].network);
    }
  }

  for (std::size_t s = 0; s < shard_count_; ++s) {
    ShardWorld& shard = shards_[s];
    shard.issued_per_fleet.assign(fleets_.size(), 0);
    for (std::size_t f = 0; f < fleet_specs_.size(); ++f) {
      shard.workloads.push_back(std::make_unique<WorkloadGenerator>(
          fleet_specs_[f],
          sim::SubstreamSeed(config_.seed ^ (0xabcdull + f), s)));
    }
  }
}

void ScenarioRuntime::RunShard(std::size_t shard_index) {
  ShardWorld& shard = shards_[shard_index];

  // Every shard replays the identical global schedule (times, fleet and
  // engine draws — cheap alias-table samples) and executes only the
  // queries whose engine it owns. The schedule RNG is consumed in exactly
  // the same order in every shard, so the realized traffic is one global
  // sequence partitioned by engine ownership — not N loosely-related
  // simulations — and is invariant to how shards map onto threads.
  sim::Rng rng(config_.seed ^ 0x10adull);
  sim::DiscreteSampler fleet_sampler(fleet_weights_);
  std::vector<sim::DiscreteSampler> engine_samplers;
  for (const Fleet& fleet : fleets_) {
    engine_samplers.emplace_back(fleet.engine_weights);
  }

  const sim::TimeUs window = end_ - start_;
  const std::uint64_t total = config_.client_queries;
  const std::uint64_t warmup = static_cast<std::uint64_t>(
      static_cast<double>(total) * config_.warmup_fraction);
  const sim::TimeUs warmup_span =
      std::min<sim::TimeUs>(sim::kMicrosPerDay, window);
  const sim::DiurnalWarp diurnal(start_, end_, config_.diurnal_amplitude);

  // The Fig. 3b event window (only meaningful for longitudinal .nz runs).
  const sim::TimeUs event_start = NzEventStart();
  const sim::TimeUs event_end = NzEventEnd();

  for (std::uint64_t i = 0; i < total + warmup; ++i) {
    // Warmup queries run in the day before the window; captured records
    // from that period are filtered out at harvest.
    sim::TimeUs t =
        i < warmup
            ? start_ - warmup_span + (warmup_span * i) / std::max<std::uint64_t>(warmup, 1)
            : diurnal.TimeOf(i - warmup, total) + rng.NextBelow(1000);
    std::size_t f = fleet_sampler.Sample(rng);
    std::size_t e = engine_samplers[f].Sample(rng);
    if (engine_owner_[f][e] != shard_index) continue;

    Fleet& fleet = fleets_[f];
    WorkloadGenerator& workload = *shard.workloads[f];
    if (config_.inject_cyclic_event && !cyclic_domains_.empty() &&
        fleet.provider == Provider::kGoogle) {
      if (t >= event_start && t < event_end) {
        workload.InjectTargets(cyclic_domains_, 0.14);
      } else {
        workload.ClearInjection();
      }
    }

    ClientQuery query = workload.Next();
    fleet.engines[e]->Resolve(query.qname, query.qtype, t);
    if (i >= warmup) {
      ++shard.issued;
      ++shard.issued_per_fleet[f];
    }
  }

  // Harvest this shard's captures into one time-ordered buffer; ties keep
  // service order, making the per-shard stream deterministic.
  for (std::size_t idx = 0; idx < shard.servers.size(); ++idx) {
    if (!service_specs_[idx].meta.captured) continue;
    capture::CaptureBuffer captured = shard.servers[idx]->TakeCaptured();
    for (auto& record : captured) {
      if (record.time_us >= start_) shard.records.push_back(std::move(record));
    }
  }
  capture::SortByTimeStable(shard.records);
}

ScenarioResult ScenarioRuntime::Run() {
  {
    // The whole construction pipeline is the "setup" phase (bench phase
    // accounting); the timer only observes, simulation state never reads it.
    base::ScopedPhaseTimer setup_phase(base::Phase::kSetup);
    BuildSites();
    MaterializeFaults();
    BuildZonesAndServers();
    BuildShardWorlds();
    BuildFleets();
    PartitionEngines();
  }

  ScenarioResult result;
  result.config = config_;
  result.window_start = start_;
  result.window_end = end_;
  result.zone_domain_count = zone_domain_count_;
  result.zone_domains_by_tld = zone_domains_by_tld_;

  // Shards vary in cost (engine ownership is round-robin but per-engine
  // query mixes differ), so the pool's dynamic task draw beats a static
  // stride when shard_count >> threads. Output stays byte-identical
  // regardless of which worker runs which shard: RunShard(s) touches only
  // shards_[s], and downstream ordering goes by shard index, never by
  // completion.
  const std::size_t threads =
      std::min(shard_count_, base::EffectiveThreads(config_.threads));
  base::ThreadPool::Shared().ParallelFor(
      shard_count_, threads, [this](std::size_t s) { RunShard(s); });

  // Hand the per-shard streams to the result unmerged: each is already
  // time-ordered, and the (time, shard) contract fixes the flattened
  // order whenever a consumer asks for it.
  std::vector<capture::CaptureBuffer> shard_buffers;
  shard_buffers.reserve(shard_count_);
  for (ShardWorld& shard : shards_) {
    shard_buffers.push_back(std::move(shard.records));
  }
  result.records =
      capture::ShardedCapture::FromShards(std::move(shard_buffers));

  for (const ServiceSpec& spec : service_specs_) {
    result.servers.push_back(spec.meta);
  }
  for (ShardWorld& shard : shards_) {
    result.client_queries_issued += shard.issued;
    for (std::size_t f = 0; f < fleets_.size(); ++f) {
      if (shard.issued_per_fleet[f] == 0) continue;
      result.client_queries_per_provider[std::string(
          ToString(fleets_[f].provider))] += shard.issued_per_fleet[f];
    }
    result.leaf_queries += shard.leaf->handled();
  }

  for (Fleet& fleet : fleets_) {
    result.ptr_records.insert(result.ptr_records.end(),
                              fleet.ptr_records.begin(),
                              fleet.ptr_records.end());
    for (const auto& engine : fleet.engines) {
      result.robustness.upstream_queries += engine->upstream_query_count();
      result.robustness.retransmits += engine->retransmit_count();
      result.robustness.timeouts += engine->timeout_count();
      result.robustness.failovers += engine->failover_count();
      result.robustness.served_stale += engine->served_stale_count();
    }
  }
  result.asdb = std::move(asdb_);
  result.google_public = std::move(google_public_);
  return result;
}

}  // namespace

std::string_view ToString(Vantage vantage) {
  switch (vantage) {
    case Vantage::kNl: return ".nl";
    case Vantage::kNz: return ".nz";
    case Vantage::kRoot: return "B-Root";
  }
  return "?";
}

sim::TimeUs WeekStart(Vantage vantage, int year) {
  if (vantage == Vantage::kRoot) {
    // Table 3: DITL days.
    switch (year) {
      case 2018: return DayStart(2018, 4, 10);
      case 2019: return DayStart(2019, 4, 9);
      default: return DayStart(2020, 5, 6);
    }
  }
  switch (year) {  // Table 2.
    case 2018: return DayStart(2018, 11, 4);
    case 2019: return DayStart(2019, 11, 3);
    default: return DayStart(2020, 4, 5);
  }
}

sim::TimeUs WindowLength(Vantage vantage) {
  return vantage == Vantage::kRoot ? sim::kMicrosPerDay
                                   : 7 * sim::kMicrosPerDay;
}

Provider ProviderOfAsn(net::Asn asn) {
  for (Provider provider : MeasuredProviders()) {
    for (net::Asn candidate : NetworkOf(provider).ases) {
      if (candidate == asn) return provider;
    }
  }
  return Provider::kOther;
}

ScenarioResult RunScenario(const ScenarioConfig& config) {
  ScenarioRuntime runtime(config);
  return runtime.Run();
}

}  // namespace clouddns::cloud
