#include "cloud/providers.h"

#include <stdexcept>

namespace clouddns::cloud {
namespace {

net::Prefix P(const char* text) { return *net::Prefix::Parse(text); }

std::vector<ProviderNetwork> BuildNetworks() {
  std::vector<ProviderNetwork> networks;

  // Paper Table 1. Address blocks are representative public allocations of
  // each organization (the exact block identities are immaterial — only the
  // prefix->AS mapping the enrichment step performs matters).
  {
    ProviderNetwork google;
    google.provider = Provider::kGoogle;
    google.ases = {15169};
    google.runs_public_dns = true;
    google.v4_blocks = {P("8.8.8.0/24"), P("8.8.4.0/24"),
                        P("172.217.32.0/20"), P("74.125.16.0/20")};
    google.v6_blocks = {P("2001:4860:1000::/36")};
    // developers.google.com/speed/public-dns ranges (Table 4 methodology).
    google.public_dns_blocks = {P("8.8.8.0/24"), P("8.8.4.0/24"),
                                P("2001:4860:4860::/48")};
    networks.push_back(std::move(google));
  }
  {
    ProviderNetwork amazon;
    amazon.provider = Provider::kAmazon;
    amazon.ases = {7224, 8987, 9059, 14168, 16509};
    amazon.v4_blocks = {P("52.95.0.0/16"), P("54.240.0.0/18"),
                        P("176.32.104.0/21"), P("13.248.96.0/19"),
                        P("99.77.128.0/18")};
    amazon.v6_blocks = {P("2600:1f00::/28"), P("2a05:d000::/27")};
    networks.push_back(std::move(amazon));
  }
  {
    ProviderNetwork microsoft;
    microsoft.provider = Provider::kMicrosoft;
    microsoft.ases = {3598, 6584, 8068, 8069, 8070, 8071, 8072,
                      8073, 8074, 8075, 12076, 23468};
    microsoft.v4_blocks = {P("40.76.0.0/14"), P("13.64.0.0/16"),
                           P("104.40.0.0/17"), P("65.52.0.0/19"),
                           P("131.253.21.0/24"), P("157.56.0.0/16")};
    microsoft.v6_blocks = {P("2603:1000::/25"), P("2a01:110::/31")};
    networks.push_back(std::move(microsoft));
  }
  {
    ProviderNetwork facebook;
    facebook.provider = Provider::kFacebook;
    facebook.ases = {32934};
    facebook.v4_blocks = {P("66.220.144.0/20"), P("69.171.224.0/19"),
                          P("157.240.0.0/17")};
    facebook.v6_blocks = {P("2a03:2880::/32")};
    networks.push_back(std::move(facebook));
  }
  {
    ProviderNetwork cloudflare;
    cloudflare.provider = Provider::kCloudflare;
    cloudflare.ases = {13335};
    cloudflare.runs_public_dns = true;
    cloudflare.v4_blocks = {P("108.162.192.0/18"), P("172.68.0.0/16"),
                            P("162.158.0.0/16")};
    cloudflare.v6_blocks = {P("2400:cb00::/32")};
    cloudflare.public_dns_blocks = {P("1.1.1.0/24"), P("1.0.0.0/24")};
    networks.push_back(std::move(cloudflare));
  }
  return networks;
}

const std::vector<ProviderNetwork>& Networks() {
  static const std::vector<ProviderNetwork> networks = BuildNetworks();
  return networks;
}

const char* OrgName(Provider provider) {
  switch (provider) {
    case Provider::kGoogle: return "GOOGLE";
    case Provider::kAmazon: return "AMAZON";
    case Provider::kMicrosoft: return "MICROSOFT";
    case Provider::kFacebook: return "FACEBOOK";
    case Provider::kCloudflare: return "CLOUDFLARE";
    case Provider::kOther: return "OTHER";
  }
  return "?";
}

}  // namespace

std::string_view ToString(Provider provider) { return OrgName(provider); }

const std::vector<Provider>& MeasuredProviders() {
  static const std::vector<Provider> providers = {
      Provider::kGoogle, Provider::kAmazon, Provider::kMicrosoft,
      Provider::kFacebook, Provider::kCloudflare};
  return providers;
}

const ProviderNetwork& NetworkOf(Provider provider) {
  for (const auto& network : Networks()) {
    if (network.provider == provider) return network;
  }
  throw std::invalid_argument("NetworkOf: no network for provider");
}

void RegisterProviderAses(net::AsDatabase& asdb) {
  for (const auto& network : Networks()) {
    for (net::Asn asn : network.ases) {
      asdb.AddAs(asn, OrgName(network.provider));
    }
    // Spread the blocks round-robin over the provider's ASes (Amazon and
    // Microsoft announce from many ASes; which block maps to which AS is
    // irrelevant for provider-level aggregation).
    std::size_t i = 0;
    for (const auto& block : network.v4_blocks) {
      asdb.Announce(block, network.ases[i++ % network.ases.size()]);
    }
    for (const auto& block : network.v6_blocks) {
      asdb.Announce(block, network.ases[i++ % network.ases.size()]);
    }
    // Public-service ranges are announced too (they may be more-specifics
    // of the blocks above or standalone allocations like 1.1.1.0/24).
    for (const auto& block : network.public_dns_blocks) {
      asdb.Announce(block, network.ases.front());
    }
  }
}

ProviderProfile ProfileFor(Provider provider, int year) {
  ProviderProfile profile;
  profile.provider = provider;
  profile.year = year;
  const int yi = year - 2018;  // 0, 1, 2
  if (yi < 0 || yi > 2) {
    throw std::invalid_argument("ProfileFor: year out of study range");
  }
  auto pick = [yi](double y2018, double y2019, double y2020) {
    return yi == 0 ? y2018 : (yi == 1 ? y2019 : y2020);
  };

  switch (provider) {
    case Provider::kGoogle:
      // Table 5: v4/v6 0.66/0.34 -> 0.49/0.51 -> 0.52/0.48; pure UDP.
      profile.engines = 10;
      profile.hosts_per_engine = 2400;  // ~24k sources (Table 4: 23943)
      profile.dual_stack_fraction = pick(0.56, 1.0, 0.96);
      profile.v6_bias = pick(1.0, 1.08, 1.0);
      profile.validate_dnssec = true;
      // §4.2.1: Q-min confirmed deployed Dec 2019.
      profile.qname_minimization = true;
      profile.qmin_enabled_at =
          sim::TimeFromCivil({2019, 12, 10});
      // Fig. 6: ~24% of queries at sizes <= 1232, none at 512.
      profile.edns_sizes = {{1232, 0.24}, {4096, 0.76}};
      // §4.2.3: aggressive NSEC caching plausibly deployed by 2020.
      profile.aggressive_nsec = yi == 2;
      profile.root_junk_multiplier = pick(0.05, 0.20, 0.45);
      profile.junk_fraction = pick(0.115, 0.12, 0.09);  // Fig. 4
      profile.client_weight = 22.0;  // Fig. 1: largest CP share
      break;

    case Provider::kAmazon:
      // Table 5: essentially v4; TCP grows 0 -> 0.02-0.04 -> 0.05.
      profile.engines = 60;  // many independent VPC resolvers
      profile.hosts_per_engine = 640;  // ~38k sources (Table 6: 38317)
      profile.dual_stack_fraction = pick(0.0, 0.04, 0.07);
      profile.v6_bias = 1.3;
      profile.validate_dnssec = true;
      // §4.2.1: NS growth seen for Amazon (clearly in .nz) only in 2020;
      // modelled as a partial engine rollout.
      profile.qname_minimization = yi == 2;
      profile.qmin_engine_fraction = 0.35;
      profile.edns_sizes = yi == 0
                               ? std::vector<std::pair<std::uint16_t, double>>{
                                     {4096, 1.0}}
                               : std::vector<std::pair<std::uint16_t, double>>{
                                     {512, pick(0.0, 0.05, 0.10)},
                                     {4096, pick(1.0, 0.95, 0.90)}};
      profile.junk_fraction = pick(0.10, 0.09, 0.06);
      profile.root_junk_multiplier = 0.10;
      profile.client_weight = 5.0;
      break;

    case Provider::kMicrosoft:
      // Table 5: 100% IPv4, 100% UDP, all three years; the one CP with no
      // DNSSEC validation (§4.2.2).
      profile.engines = 20;
      profile.hosts_per_engine = 720;  // ~14.5k sources (Table 6)
      profile.dual_stack_fraction = 0.05;  // 3% v6 sources, ~0 v6 traffic
      profile.v6_bias = 0.02;
      profile.validate_dnssec = false;
      profile.qname_minimization = false;
      profile.edns_sizes = {{1232, 0.30}, {4096, 0.70}};
      profile.junk_fraction = pick(0.13, 0.12, 0.10);
      profile.root_junk_multiplier = 0.10;
      profile.client_weight = 6.3;
      break;

    case Provider::kFacebook:
      // Table 5: v6-majority since 2019; the only CP with material TCP
      // (0.21 -> 0.15 -> 0.14 for .nl). Fig. 6: ~30% of its UDP queries
      // advertise EDNS 512.
      profile.engines = 13;  // one backend per site (Fig. 5)
      profile.hosts_per_engine = 800;
      profile.dual_stack_fraction = 1.0;
      profile.v6_bias = pick(1.0, 5.5, 5.5);
      profile.validate_dnssec = true;
      profile.qname_minimization = yi == 2;  // NS growth visible in 2020
      profile.edns_sizes = {{512, pick(0.42, 0.31, 0.30)},
                            {1232, 0.20},
                            {4096, pick(0.38, 0.49, 0.50)}};
      profile.junk_fraction = pick(0.05, 0.045, 0.035);
      profile.root_junk_multiplier = 0.03;
      profile.client_weight = 3.3;
      break;

    case Provider::kCloudflare:
      // Table 5: even v4/v6, ~pure UDP. §4.2.2: the exemplary validator
      // (more DS than DNSKEY queries). Q-min from launch.
      profile.explicit_ds = true;
      profile.engines = 12;
      profile.hosts_per_engine = 330;
      profile.dual_stack_fraction = 1.0;
      profile.v6_bias = pick(0.85, 0.8, 1.02);
      profile.validate_dnssec = true;
      profile.qname_minimization = true;
      profile.edns_sizes = {{512, pick(0.0, 0.01, 0.02)},
                            {1232, 0.88},
                            {4096, pick(0.12, 0.11, 0.10)}};
      profile.junk_fraction = pick(0.09, 0.14, 0.07);
      profile.aggressive_nsec = yi == 2;
      profile.root_junk_multiplier = pick(0.15, 0.40, 0.55);
      profile.client_weight = 2.3;
      break;

    case Provider::kOther:
      // Baseline for the ~37k other ASes; the fleet builder perturbs this
      // per engine. Validation and q-min adoption grow over the years
      // (global q-min was measured at 33-40% of queries in 2019 [13]).
      profile.engines = 1;
      profile.hosts_per_engine = 4;
      profile.dual_stack_fraction = pick(0.20, 0.25, 0.30);
      profile.validate_dnssec = false;
      profile.qname_minimization = false;
      profile.edns_sizes = {{0, 0.05},
                            {512, 0.12},
                            {1232, 0.28},
                            {4096, 0.55}};
      profile.junk_fraction = 0.17;
      profile.client_weight = 70.0;  // Fig. 1: ~2/3 of ccTLD traffic
      break;
  }
  return profile;
}

}  // namespace clouddns::cloud
