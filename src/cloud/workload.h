// Client-side query workload: what end users/applications ask the
// resolvers for. Popularity is Zipf over the registered domains; a junk
// share targets unregistered names (typos, misconfigurations); root-vantage
// workloads add Chromium-style random-TLD probes (§3, [19][42]).
#pragma once

#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/types.h"
#include "sim/random.h"

namespace clouddns::cloud {

/// One registrable suffix and how many domains exist under it. For .nl
/// this is just {"nl", N}; .nz has the second level ("nz") plus the
/// second-level zones ("co.nz", "net.nz", ...) with third-level domains.
struct SuffixPopulation {
  dns::Name suffix;
  std::size_t domain_count = 0;
  double weight = 1.0;  ///< Client-interest share of this suffix.
  std::string stem = "dom";  ///< Registered domains are "<stem><i>.<suffix>".
};

struct WorkloadSpec {
  std::vector<SuffixPopulation> suffixes;
  double zipf_exponent = 0.95;
  /// Client qtype mix for ordinary lookups (A/AAAA dominate; the rest is
  /// mail/infrastructure). Fig. 2's 2018 panels reflect this directly.
  std::vector<std::pair<dns::RrType, double>> qtype_mix = {
      {dns::RrType::kA, 0.58},   {dns::RrType::kAaaa, 0.27},
      {dns::RrType::kMx, 0.06},  {dns::RrType::kTxt, 0.06},
      {dns::RrType::kNs, 0.015}, {dns::RrType::kSoa, 0.015}};
  /// Share of queries for names that do not exist under a real suffix.
  double junk_fraction = 0.10;
  /// Share of Chromium-style random single-label (fake TLD) probes.
  double chromium_fraction = 0.0;
};

struct ClientQuery {
  dns::Name qname;
  dns::RrType qtype = dns::RrType::kA;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadSpec spec, std::uint64_t seed);

  [[nodiscard]] ClientQuery Next();

  /// Forces the next `count` calls to draw from an override domain list
  /// (used to inject the Feb-2020 cyclic-dependency event of Fig. 3b).
  void InjectTargets(std::vector<dns::Name> targets, double probability);
  void ClearInjection();

  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }

 private:
  [[nodiscard]] dns::Name RandomLabelName(std::size_t min_len,
                                          std::size_t max_len,
                                          const dns::Name& suffix);

  WorkloadSpec spec_;
  sim::Rng rng_;
  sim::DiscreteSampler suffix_sampler_;
  std::vector<sim::ZipfSampler> domain_samplers_;  // one per suffix
  sim::DiscreteSampler qtype_sampler_;
  std::vector<dns::RrType> qtypes_;
  std::vector<dns::Name> injected_;
  double injected_probability_ = 0.0;
};

}  // namespace clouddns::cloud
