// Deterministic merging of capture streams. The parallel scenario engine
// gives every simulation shard a private CaptureBuffer; this module joins
// them into the single time-ordered stream the analytics layer consumes.
// The merge order is a contract: records sort by arrival time, with ties
// broken by shard index (then by within-shard order), so the merged buffer
// is byte-identical no matter how many threads executed the shards.
#pragma once

#include <vector>

#include "capture/record.h"

namespace clouddns::capture {

/// Appends `src` onto `dst`, destroying `src`. Moves elements (records own
/// heap-allocated names) and reserves up front.
void AppendBuffer(CaptureBuffer& dst, CaptureBuffer&& src);

/// Sorts one buffer by time, keeping the existing relative order of equal
/// timestamps (the within-shard tiebreak of the merge contract).
void SortByTimeStable(CaptureBuffer& buffer);

/// Merges per-shard buffers (each already time-ordered) into one stream.
/// Ties across shards resolve to the lower shard index; the result is
/// independent of thread scheduling. Consumes the inputs.
[[nodiscard]] CaptureBuffer MergeShards(std::vector<CaptureBuffer>&& shards);

}  // namespace clouddns::capture
