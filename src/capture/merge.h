// Deterministic merging of capture streams. The parallel scenario engine
// gives every simulation shard a private CaptureBuffer; this module joins
// them into the single time-ordered stream that export paths consume.
// The merge order is a contract: records sort by arrival time, with ties
// broken by shard index (then by within-shard order), so the merged buffer
// is byte-identical no matter how many threads executed the shards.
//
// MergeShards is a parallel ladder merge: adjacent shard pairs merge by
// galloping over sorted sub-ranges and moving whole runs, level by level,
// with the pairwise merges of one level running concurrently on the shared
// base::ThreadPool. Keeping the lower-indexed buffer on the left of every
// pairwise merge makes the ladder reproduce exactly the order the old
// per-record heap merge produced (retained as MergeShardsHeap for the
// equivalence tests and the bench_micro_merge old-vs-new comparison).
// The strategy adapts to the hardware: the ladder moves every record
// ceil(lg k) times, which only pays off when its rounds overlap on real
// cores, so a >2-way merge with a single execution lane takes the
// single-pass cursor merge instead — same output either way.
#pragma once

#include <cstdint>
#include <vector>

#include "capture/record.h"

namespace clouddns::capture {

/// Appends `src` onto `dst`, destroying `src`. Moves elements (records own
/// heap-allocated names) and reserves up front.
void AppendBuffer(CaptureBuffer& dst, CaptureBuffer&& src);

/// Sorts one buffer by time, keeping the existing relative order of equal
/// timestamps (the within-shard tiebreak of the merge contract).
void SortByTimeStable(CaptureBuffer& buffer);

/// Merges per-shard buffers (each already time-ordered) into one stream.
/// Ties across shards resolve to the lower shard index; the result is
/// independent of thread scheduling. Consumes the inputs.
[[nodiscard]] CaptureBuffer MergeShards(std::vector<CaptureBuffer>&& shards);

/// Non-destructive MergeShards: copies the shard buffers, then merges.
[[nodiscard]] CaptureBuffer MergeShardsCopy(
    const std::vector<CaptureBuffer>& shards);

/// The original per-record priority-queue K-way merge. Identical output to
/// MergeShards by contract; kept as the reference implementation for the
/// equivalence tests and as the "old" side of bench_micro_merge.
[[nodiscard]] CaptureBuffer MergeShardsHeap(
    std::vector<CaptureBuffer>&& shards);

/// Cumulative wall time (nanoseconds) this process has spent inside
/// MergeShards/MergeShardsHeap. Phase telemetry for the bench harness:
/// a sweep point's merge cost is the delta across its analyze loop —
/// which the sharded pipeline drives to zero.
[[nodiscard]] std::uint64_t MergeNanos();

}  // namespace clouddns::capture
