// LEB128 varint + zigzag primitives for the columnar capture format.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace clouddns::capture {

inline void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Reads a varint at `pos`, advancing it. Returns nullopt on truncation or
/// overlong (>10 byte) encodings.
inline std::optional<std::uint64_t> GetVarint(
    const std::vector<std::uint8_t>& in, std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos >= in.size()) return std::nullopt;
    std::uint8_t byte = in[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;
}

inline std::uint64_t ZigzagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

inline std::int64_t ZigzagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

}  // namespace clouddns::capture
