// A capture stream that STAYS sharded from simulation through analytics
// (DESIGN.md §13). The scenario engine produces one time-sorted buffer per
// simulation shard; most consumers (the fused AnalysisPlan, the chaos
// day-bucketing) only need per-record access in any deterministic order,
// so they scan the shard buffers in place and never pay the K-way merge or
// the merged-buffer allocation. Consumers that genuinely need the single
// time-ordered stream — pcap/columnar export, row-wise encode, rank
// sketches — ask for Flatten(), which merges once under the existing
// (time, shard index, within-shard order) contract and memoizes the
// result.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/io.h"
#include "capture/record.h"

namespace clouddns::capture {

class ShardedCapture {
 public:
  ShardedCapture() = default;

  /// Wraps an already-flat (merged or externally loaded) buffer as a
  /// single-shard view. Implicit on purpose: a plain CaptureBuffer is a
  /// valid degenerate sharding, which keeps file loads and hand-built
  /// test fixtures source-compatible.
  ShardedCapture(CaptureBuffer flat);  // NOLINT(google-explicit-constructor)

  /// Adopts per-shard buffers from the scenario engine. Each buffer must
  /// already be time-sorted (the engine's per-shard harvest contract);
  /// empty shards are kept so shard indices stay meaningful.
  [[nodiscard]] static ShardedCapture FromShards(
      std::vector<CaptureBuffer> shards);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const CaptureBuffer& shard(std::size_t index) const {
    return shards_[index];
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// The single time-ordered stream: records sort by arrival time, ties
  /// resolve to the lower shard index, within-shard order is kept. Merged
  /// on first use and memoized (the shard buffers are retained untouched).
  /// Not safe to race with other member calls on the same object.
  const CaptureBuffer& Flatten() const;

  /// Like Flatten(), but returns a fresh buffer and leaves no memo behind
  /// — for one-shot exports that should not double the resident set.
  [[nodiscard]] CaptureBuffer FlattenCopy() const;

  /// Destructively extracts the flattened stream (moves records out).
  [[nodiscard]] CaptureBuffer TakeFlat() &&;

  /// Compatibility bridge for APIs taking `const CaptureBuffer&`
  /// (CountBy, WriteCaptureFile, ...). Flattens — prefer shard-wise
  /// iteration in anything hot.
  operator const CaptureBuffer&() const {  // NOLINT
    return Flatten();
  }

  // Vector-style access in flattened (time, shard) order.
  [[nodiscard]] CaptureBuffer::const_iterator begin() const {
    return Flatten().begin();
  }
  [[nodiscard]] CaptureBuffer::const_iterator end() const {
    return Flatten().end();
  }
  [[nodiscard]] const CaptureRecord& operator[](std::size_t index) const {
    return Flatten()[index];
  }
  [[nodiscard]] const CaptureRecord& front() const { return Flatten().front(); }
  [[nodiscard]] const CaptureRecord& back() const { return Flatten().back(); }

  /// Appends a record, collapsing to a single-shard view first if needed.
  /// Fixture-building convenience; the engine never appends post-merge.
  void push_back(CaptureRecord record);

  /// Streams compare in flattened order: two captures are equal when they
  /// yield the same time-ordered record sequence, regardless of how the
  /// records are distributed across shards.
  friend bool operator==(const ShardedCapture& a, const ShardedCapture& b) {
    return a.Flatten() == b.Flatten();
  }

  /// The shard index of every record in flattened order — the payload of
  /// the `.shards` cache sidecar.
  [[nodiscard]] std::vector<std::uint32_t> MergeOrderShardIds() const;

 private:
  std::vector<CaptureBuffer> shards_;
  std::size_t size_ = 0;
  mutable CaptureBuffer flat_;
  mutable bool flat_valid_ = false;
};

/// Writes the run-length-encoded shard-id stream of `capture` (in merge
/// order) to `path`, framed/checksummed and atomically renamed into place
/// via base::io (tag kTagShards). The main `.cdns` capture file stays
/// byte-identical; this sidecar is purely additive, letting a later load
/// rebuild the exact shard structure.
[[nodiscard]] base::io::IoStatus WriteShardIndexStatus(
    const std::string& path, const ShardedCapture& capture);
bool WriteShardIndex(const std::string& path, const ShardedCapture& capture);

/// Re-partitions a flat, merge-ordered buffer into the shard structure
/// recorded at `path`. Each shard subsequence of the sorted stream is
/// itself sorted, so re-merging reproduces `flat` byte-for-byte. Returns a
/// single-shard view when the sidecar is missing, malformed, or does not
/// match `flat` (older caches keep working, just without scan parallelism).
/// Legacy unframed sidecars still parse. When `status_out` is given it
/// reports WHY a fallback happened — kNotFound (no sidecar; benign) vs a
/// corruption code (the dataset cache quarantines on those).
[[nodiscard]] ShardedCapture ReshardFromIndex(
    const std::string& path, CaptureBuffer flat,
    base::io::IoStatus* status_out = nullptr);

}  // namespace clouddns::capture
