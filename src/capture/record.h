// The per-query capture record — our equivalent of ENTRADA's flattened
// pcap row. One record is written at the authoritative server for every
// query/response pair; the analytics layer consumes streams of these.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/name.h"
#include "dns/types.h"
#include "net/ip.h"
#include "sim/clock.h"

namespace clouddns::capture {

struct CaptureRecord {
  sim::TimeUs time_us = 0;          ///< Query arrival at the server.
  std::uint32_t server_id = 0;      ///< Which authoritative NS (e.g. "A"=0).
  std::uint32_t site_id = 0;        ///< Anycast site that caught the query.
  net::IpAddress src;               ///< Resolver source address.
  std::uint16_t src_port = 0;
  dns::Transport transport = dns::Transport::kUdp;
  dns::Name qname;
  dns::RrType qtype = dns::RrType::kA;
  dns::Rcode rcode = dns::Rcode::kNoError;  ///< Response RCODE.
  bool has_edns = false;
  std::uint16_t edns_udp_size = 0;  ///< EDNS(0) advertised size, 0 if none.
  bool do_bit = false;
  bool tc = false;                  ///< Response was truncated.
  std::uint16_t query_size = 0;     ///< Wire bytes of the query.
  std::uint16_t response_size = 0;  ///< Wire bytes of the response.
  std::uint32_t tcp_handshake_rtt_us = 0;  ///< 0 for UDP.

  friend bool operator==(const CaptureRecord&, const CaptureRecord&) = default;
};

/// An in-memory capture stream; what a week of pcap becomes after ENTRADA
/// ingestion. Deliberately a plain vector: the analytics engine scans it.
using CaptureBuffer = std::vector<CaptureRecord>;

}  // namespace clouddns::capture
