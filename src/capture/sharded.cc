#include "capture/sharded.h"

// lint:hot-path
// Flatten()/TakeFlat() are the merge boundary of the sharded pipeline
// (DESIGN.md §13); everything else here must stay allocation-lean so that
// wrapping a buffer in a ShardedCapture costs nothing over the raw vector.

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <queue>
#include <utility>

#include "capture/merge.h"

namespace clouddns::capture {
namespace {

constexpr char kShardIndexMagic[8] = {'C', 'D', 'N', 'S', 'S', 'H', 'R', 'D'};
constexpr std::uint64_t kShardIndexVersion = 1;

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

bool GetVarint(const std::vector<std::uint8_t>& in, std::size_t& pos,
               std::uint64_t& value) {
  value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= in.size()) return false;
    const std::uint8_t byte = in[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;
}

}  // namespace

ShardedCapture::ShardedCapture(CaptureBuffer flat) : size_(flat.size()) {
  shards_.push_back(std::move(flat));
}

ShardedCapture ShardedCapture::FromShards(std::vector<CaptureBuffer> shards) {
  ShardedCapture result;
  result.shards_ = std::move(shards);
  for (const CaptureBuffer& shard : result.shards_) {
    result.size_ += shard.size();
  }
  return result;
}

const CaptureBuffer& ShardedCapture::Flatten() const {
  if (shards_.size() == 1) return shards_.front();
  if (!flat_valid_) {
    flat_ = MergeShardsCopy(shards_);
    flat_valid_ = true;
  }
  return flat_;
}

CaptureBuffer ShardedCapture::FlattenCopy() const {
  if (shards_.size() == 1) return shards_.front();
  if (flat_valid_) return flat_;
  return MergeShardsCopy(shards_);
}

CaptureBuffer ShardedCapture::TakeFlat() && {
  CaptureBuffer out;
  if (flat_valid_) {
    out = std::move(flat_);
    flat_valid_ = false;
  } else if (shards_.size() == 1) {
    out = std::move(shards_.front());
  } else {
    out = MergeShards(std::move(shards_));
  }
  shards_.clear();
  size_ = 0;
  return out;
}

void ShardedCapture::push_back(CaptureRecord record) {
  if (shards_.size() > 1) {
    // Collapse to the flattened stream first: appending to a multi-shard
    // view must behave exactly like appending to its Flatten() result.
    CaptureBuffer flat =
        flat_valid_ ? std::move(flat_) : MergeShards(std::move(shards_));
    shards_.clear();
    shards_.push_back(std::move(flat));
  }
  if (shards_.empty()) shards_.emplace_back();
  shards_.front().push_back(std::move(record));
  size_ = shards_.front().size();
  flat_valid_ = false;
  CaptureBuffer().swap(flat_);
}

std::vector<std::uint32_t> ShardedCapture::MergeOrderShardIds() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(size_);
  if (shards_.size() == 1) {
    ids.assign(size_, 0);
    return ids;
  }
  // Same cursor walk as the heap merge: emit the shard index instead of
  // the record, so ids[i] names the shard of Flatten()[i].
  struct Cursor {
    sim::TimeUs time;
    std::size_t shard;
  };
  auto later = [](const Cursor& a, const Cursor& b) {
    return a.time != b.time ? a.time > b.time : a.shard > b.shard;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);
  std::vector<std::size_t> next(shards_.size(), 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s].empty()) heap.push({shards_[s][0].time_us, s});
  }
  while (!heap.empty()) {
    auto [time, s] = heap.top();
    heap.pop();
    ids.push_back(static_cast<std::uint32_t>(s));
    if (++next[s] < shards_[s].size()) {
      heap.push({shards_[s][next[s]].time_us, s});
    }
  }
  return ids;
}

// lint:allow(hot-alloc): cache sidecar path string — cold I/O, not the scan loop
base::io::IoStatus WriteShardIndexStatus(const std::string& path,
                                         const ShardedCapture& capture) {
  const std::vector<std::uint32_t> ids = capture.MergeOrderShardIds();

  std::vector<std::uint8_t> bytes;
  bytes.reserve(64 + ids.size() / 32);
  bytes.insert(bytes.end(), std::begin(kShardIndexMagic),
               std::end(kShardIndexMagic));
  PutVarint(bytes, kShardIndexVersion);
  PutVarint(bytes, capture.shard_count());
  PutVarint(bytes, capture.size());
  // Run-length encode the merge-order shard ids: shard streams interleave
  // at burst granularity, so runs are long and the sidecar stays tiny
  // relative to the .cdns capture it annotates.
  std::size_t i = 0;
  while (i < ids.size()) {
    std::size_t j = i;
    while (j < ids.size() && ids[j] == ids[i]) ++j;
    PutVarint(bytes, ids[i]);
    PutVarint(bytes, j - i);
    i = j;
  }

  return base::io::WriteFramedFile(path, base::io::kTagShards, bytes);
}

// lint:allow(hot-alloc): cache sidecar path string — cold I/O, not the scan loop
bool WriteShardIndex(const std::string& path, const ShardedCapture& capture) {
  return WriteShardIndexStatus(path, capture).ok();
}

// lint:allow(hot-alloc): cache sidecar path string — cold I/O, not the scan loop
ShardedCapture ReshardFromIndex(const std::string& path, CaptureBuffer flat,
                                base::io::IoStatus* status_out) {
  base::io::IoStatus local_status;
  base::io::IoStatus& status = status_out != nullptr ? *status_out : local_status;
  status = base::io::IoStatus::Ok();

  std::vector<std::uint8_t> bytes;
  status = base::io::ReadFramedFile(path, base::io::kTagShards, bytes);
  if (!status.ok()) return ShardedCapture(std::move(flat));

  // From here down every malformation is payload-level corruption: the
  // frame (if any) verified, but the shard-index bytes inside do not
  // describe `flat`.
  status = base::io::IoStatus::Error(
      base::io::IoCode::kPayloadCorrupt,
      "shard index payload malformed or mismatched against the capture");

  std::size_t pos = sizeof(kShardIndexMagic);
  if (bytes.size() < pos ||
      !std::equal(std::begin(kShardIndexMagic), std::end(kShardIndexMagic),
                  bytes.begin())) {
    return ShardedCapture(std::move(flat));
  }
  std::uint64_t version = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t record_count = 0;
  if (!GetVarint(bytes, pos, version) || version != kShardIndexVersion ||
      !GetVarint(bytes, pos, shard_count) ||
      !GetVarint(bytes, pos, record_count) || shard_count == 0 ||
      record_count != flat.size()) {
    return ShardedCapture(std::move(flat));
  }

  // Decode and validate all runs before moving a single record, so a
  // truncated or mismatched sidecar falls back cleanly.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> runs;
  std::vector<std::size_t> shard_sizes(
      static_cast<std::size_t>(shard_count), 0);
  std::uint64_t covered = 0;
  while (pos < bytes.size()) {
    std::uint64_t shard = 0;
    std::uint64_t length = 0;
    if (!GetVarint(bytes, pos, shard) || !GetVarint(bytes, pos, length) ||
        shard >= shard_count || length == 0 ||
        length > record_count - covered) {
      return ShardedCapture(std::move(flat));
    }
    runs.emplace_back(static_cast<std::uint32_t>(shard), length);
    shard_sizes[static_cast<std::size_t>(shard)] +=
        static_cast<std::size_t>(length);
    covered += length;
  }
  if (covered != record_count) return ShardedCapture(std::move(flat));

  // Each shard's records form a subsequence of the time-sorted flat
  // stream, so every rebuilt shard buffer is itself time-sorted and the
  // re-merge reproduces `flat` byte-for-byte.
  std::vector<CaptureBuffer> shards(static_cast<std::size_t>(shard_count));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards[s].reserve(shard_sizes[s]);
  }
  std::size_t offset = 0;
  for (const auto& [shard, length] : runs) {
    auto first = flat.begin() + static_cast<std::ptrdiff_t>(offset);
    auto last = first + static_cast<std::ptrdiff_t>(length);
    shards[shard].insert(shards[shard].end(), std::make_move_iterator(first),
                         std::make_move_iterator(last));
    offset += static_cast<std::size_t>(length);
  }
  status = base::io::IoStatus::Ok();
  return ShardedCapture::FromShards(std::move(shards));
}

}  // namespace clouddns::capture
