#include "capture/anonymize.h"

namespace clouddns::capture {
namespace {

std::uint64_t Mix(std::uint64_t x) {
  // splitmix64 finalizer as the keyed PRF core.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

bool Anonymizer::FlipBit(std::uint64_t prefix_hash) const {
  return (Mix(prefix_hash ^ key_) & 1u) != 0;
}

net::IpAddress Anonymizer::Anonymize(const net::IpAddress& address) const {
  // Crypto-PAn construction: output bit i = input bit i XOR f(key, the
  // i-bit input prefix). Identical prefixes produce identical flip
  // decisions, so shared prefixes stay shared (and only those).
  const int width = address.bit_width();
  // Running hash of the consumed prefix; seeded per family so v4 and v6
  // mappings are independent.
  std::uint64_t prefix_hash = address.is_v4() ? 0x3404ull : 0x3606ull;

  if (address.is_v4()) {
    std::uint32_t out = 0;
    for (int i = 0; i < width; ++i) {
      bool bit = address.bit(i);
      bool flipped = bit ^ FlipBit(prefix_hash);
      out = (out << 1) | (flipped ? 1u : 0u);
      prefix_hash = Mix(prefix_hash * 2 + (bit ? 1 : 0));
    }
    return net::Ipv4Address(out);
  }

  net::Ipv6Address::Bytes bytes{};
  for (int i = 0; i < width; ++i) {
    bool bit = address.bit(i);
    bool flipped = bit ^ FlipBit(prefix_hash);
    if (flipped) {
      bytes[static_cast<std::size_t>(i / 8)] |=
          static_cast<std::uint8_t>(0x80u >> (i % 8));
    }
    prefix_hash = Mix(prefix_hash * 2 + (bit ? 1 : 0));
  }
  return net::Ipv6Address(bytes);
}

CaptureBuffer Anonymizer::AnonymizeCapture(const CaptureBuffer& records) const {
  CaptureBuffer out;
  out.reserve(records.size());
  for (const CaptureRecord& record : records) {
    CaptureRecord copy = record;
    copy.src = Anonymize(record.src);
    out.push_back(std::move(copy));
  }
  return out;
}

}  // namespace clouddns::capture
