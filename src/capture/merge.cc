#include "capture/merge.h"

#include <algorithm>
#include <queue>

namespace clouddns::capture {

void AppendBuffer(CaptureBuffer& dst, CaptureBuffer&& src) {
  if (dst.empty()) {
    dst = std::move(src);
    return;
  }
  dst.reserve(dst.size() + src.size());
  std::move(src.begin(), src.end(), std::back_inserter(dst));
  src.clear();
}

void SortByTimeStable(CaptureBuffer& buffer) {
  std::stable_sort(buffer.begin(), buffer.end(),
                   [](const CaptureRecord& a, const CaptureRecord& b) {
                     return a.time_us < b.time_us;
                   });
}

CaptureBuffer MergeShards(std::vector<CaptureBuffer>&& shards) {
  // K-way merge over cursors. A heap entry is (time, shard); on ties the
  // lower shard index wins, matching the documented determinism contract.
  struct Cursor {
    sim::TimeUs time;
    std::size_t shard;
  };
  auto later = [](const Cursor& a, const Cursor& b) {
    return a.time != b.time ? a.time > b.time : a.shard > b.shard;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);

  std::size_t total = 0;
  std::vector<std::size_t> next(shards.size(), 0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    total += shards[s].size();
    if (!shards[s].empty()) heap.push({shards[s][0].time_us, s});
  }

  CaptureBuffer merged;
  merged.reserve(total);
  while (!heap.empty()) {
    auto [time, s] = heap.top();
    heap.pop();
    merged.push_back(std::move(shards[s][next[s]]));
    if (++next[s] < shards[s].size()) {
      heap.push({shards[s][next[s]].time_us, s});
    }
  }
  for (auto& shard : shards) CaptureBuffer().swap(shard);
  return merged;
}

}  // namespace clouddns::capture
