#include "capture/merge.h"

// lint:hot-path
// The ladder merge below is the flatten boundary of the sharded pipeline:
// every record an export path touches moves through MergeTwo. Keep it free
// of per-record allocation — runs move wholesale via move iterators.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <queue>
#include <utility>

#include "base/threads.h"

namespace clouddns::capture {
namespace {

std::atomic<std::uint64_t> g_merge_nanos{0};

/// Accumulates the wall time spent inside a merge into the process-wide
/// counter behind MergeNanos(). Pure telemetry: the measured duration
/// feeds BENCH_scaling.json phase fields and never influences merge
/// output, simulation state, or report bytes.
class MergeTimer {
 public:
  // lint:allow(wall-clock): merge-phase bench telemetry only; the reading never reaches simulation state or rendered output
  MergeTimer() : start_(std::chrono::steady_clock::now()) {}

  ~MergeTimer() {
    // lint:allow(wall-clock): merge-phase bench telemetry only; see constructor
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    g_merge_nanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
  }

  MergeTimer(const MergeTimer&) = delete;
  MergeTimer& operator=(const MergeTimer&) = delete;

 private:
  // lint:allow(wall-clock): telemetry start timestamp for the counter above
  std::chrono::steady_clock::time_point start_;
};

/// Merges two time-sorted buffers, `a` owning the lower shard indices, so
/// ties go to `a` (and within `a`, existing order is kept). Instead of
/// popping one record at a time, each step gallops (binary-searches) to
/// the end of the run the current side may emit — upper_bound on the left
/// so equal timestamps stay left, lower_bound on the right — and moves the
/// whole run at once. Shard streams interleave at burst granularity, so
/// runs are long and the per-record heap bookkeeping of the old merge
/// disappears.
CaptureBuffer MergeTwo(CaptureBuffer&& a, CaptureBuffer&& b) {
  if (a.empty()) return std::move(b);
  if (b.empty()) return std::move(a);
  CaptureBuffer out;
  out.reserve(a.size() + b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (ia->time_us <= ib->time_us) {
      auto run_end = std::upper_bound(
          ia, a.end(), ib->time_us,
          [](sim::TimeUs t, const CaptureRecord& r) { return t < r.time_us; });
      out.insert(out.end(), std::make_move_iterator(ia),
                 std::make_move_iterator(run_end));
      ia = run_end;
    } else {
      auto run_end = std::lower_bound(
          ib, b.end(), ia->time_us,
          [](const CaptureRecord& r, sim::TimeUs t) { return r.time_us < t; });
      out.insert(out.end(), std::make_move_iterator(ib),
                 std::make_move_iterator(run_end));
      ib = run_end;
    }
  }
  out.insert(out.end(), std::make_move_iterator(ia),
             std::make_move_iterator(a.end()));
  out.insert(out.end(), std::make_move_iterator(ib),
             std::make_move_iterator(b.end()));
  CaptureBuffer().swap(a);
  CaptureBuffer().swap(b);
  return out;
}

/// Single-pass K-way cursor merge (the pre-ladder algorithm), shared by
/// MergeShardsHeap and MergeShards' serial branch. No timer — callers time.
CaptureBuffer HeapMergeCore(std::vector<CaptureBuffer>&& shards) {
  // A heap entry is (time, shard); on ties the lower shard index wins,
  // matching the documented determinism contract.
  struct Cursor {
    sim::TimeUs time;
    std::size_t shard;
  };
  auto later = [](const Cursor& a, const Cursor& b) {
    return a.time != b.time ? a.time > b.time : a.shard > b.shard;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);

  std::size_t total = 0;
  std::vector<std::size_t> next(shards.size(), 0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    total += shards[s].size();
    if (!shards[s].empty()) heap.push({shards[s][0].time_us, s});
  }

  CaptureBuffer merged;
  merged.reserve(total);
  while (!heap.empty()) {
    auto [time, s] = heap.top();
    heap.pop();
    merged.push_back(std::move(shards[s][next[s]]));
    if (++next[s] < shards[s].size()) {
      heap.push({shards[s][next[s]].time_us, s});
    }
  }
  for (auto& shard : shards) CaptureBuffer().swap(shard);
  return merged;
}

}  // namespace

void AppendBuffer(CaptureBuffer& dst, CaptureBuffer&& src) {
  if (dst.empty()) {
    dst = std::move(src);
    return;
  }
  dst.reserve(dst.size() + src.size());
  std::move(src.begin(), src.end(), std::back_inserter(dst));
  src.clear();
}

void SortByTimeStable(CaptureBuffer& buffer) {
  std::stable_sort(buffer.begin(), buffer.end(),
                   [](const CaptureRecord& a, const CaptureRecord& b) {
                     return a.time_us < b.time_us;
                   });
}

CaptureBuffer MergeShards(std::vector<CaptureBuffer>&& shards) {
  if (shards.empty()) return {};
  if (shards.size() == 1) return std::move(shards.front());
  MergeTimer timer;
  // Ladder (tournament) merge: each round pairs adjacent buffers and
  // merges the pairs concurrently; an odd trailing buffer carries over
  // unmerged. Pairing adjacents keeps lower shard indices on the left of
  // every two-way merge, so by induction over rounds ties resolve to the
  // lower original shard at every level — exactly the order the
  // per-record heap merge (MergeShardsHeap) produces. A two-shard input
  // is just the final round: one galloping merge, no ladder overhead.
  std::vector<CaptureBuffer> level = std::move(shards);
  const std::size_t workers = std::min(base::EffectiveThreads(0),
                                       base::ThreadPool::Shared().lane_count());
  // The ladder moves every record ceil(lg k) times; the cursor merge moves
  // it once but pays per-record heap bookkeeping. With parallel lanes the
  // ladder's rounds overlap and win; run serially on a >2-way merge, the
  // extra passes are pure cost — take the single-pass merge instead. Both
  // produce the identical (time, shard, within-shard) order.
  if (workers <= 1 && level.size() > 2) return HeapMergeCore(std::move(level));
  while (level.size() > 1) {
    const std::size_t pairs = level.size() / 2;
    std::vector<CaptureBuffer> next(pairs + (level.size() & 1));
    base::ThreadPool::Shared().ParallelFor(
        pairs, workers, [&level, &next](std::size_t p) {
          next[p] =
              MergeTwo(std::move(level[2 * p]), std::move(level[2 * p + 1]));
        });
    if (level.size() & 1) next[pairs] = std::move(level.back());
    level = std::move(next);
  }
  return std::move(level.front());
}

CaptureBuffer MergeShardsCopy(const std::vector<CaptureBuffer>& shards) {
  std::vector<CaptureBuffer> copy = shards;
  return MergeShards(std::move(copy));
}

CaptureBuffer MergeShardsHeap(std::vector<CaptureBuffer>&& shards) {
  MergeTimer timer;
  return HeapMergeCore(std::move(shards));
}

std::uint64_t MergeNanos() {
  return g_merge_nanos.load(std::memory_order_relaxed);
}

}  // namespace clouddns::capture
