// Columnar serialization of capture streams, mirroring ENTRADA's choice of
// a column-oriented warehouse format (Parquet) for DNS traffic:
//   - timestamps are delta-encoded varints (queries arrive nearly sorted),
//   - qnames are dictionary-encoded (popularity skew makes them repeat),
//   - every other column is a varint/byte stream of its own.
// The layout is:  magic | version | record count | per-column blocks,
// each block prefixed by a column id and byte length, so readers can skip
// columns they do not need.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "base/io.h"
#include "capture/record.h"

namespace clouddns::capture {

/// Serializes `records` into the columnar byte format.
[[nodiscard]] std::vector<std::uint8_t> EncodeColumnar(
    const CaptureBuffer& records);

/// Parses a columnar byte buffer. Returns nullopt on any malformation
/// (bad magic, truncated column, dictionary index out of range, ...).
[[nodiscard]] std::optional<CaptureBuffer> DecodeColumnar(
    const std::vector<std::uint8_t>& bytes);

/// Row-oriented encoding of the same records, kept for the ablation bench
/// (bench_micro_capture): columnar should win on size for realistic traces.
[[nodiscard]] std::vector<std::uint8_t> EncodeRowWise(
    const CaptureBuffer& records);
[[nodiscard]] std::optional<CaptureBuffer> DecodeRowWise(
    const std::vector<std::uint8_t>& bytes);

/// File helpers. Writes go through base::io: the columnar payload is
/// wrapped in the checksummed frame (tag kTagCapture) and landed with
/// write-to-temp + fsync + atomic rename. Reads verify the frame before
/// the columnar decoder runs; legacy unframed files (pre-framing caches)
/// still load byte-identically.
[[nodiscard]] base::io::IoStatus WriteCaptureFileStatus(
    const std::string& path, const CaptureBuffer& records);
[[nodiscard]] base::io::IoStatus ReadCaptureFileStatus(const std::string& path,
                                                       CaptureBuffer& out);

/// Untyped wrappers kept for callers that only need success/failure.
bool WriteCaptureFile(const std::string& path, const CaptureBuffer& records);
[[nodiscard]] std::optional<CaptureBuffer> ReadCaptureFile(
    const std::string& path);

}  // namespace clouddns::capture
