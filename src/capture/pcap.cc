#include "capture/pcap.h"

#include <cstdio>

#include "dns/audit.h"
#include "dns/message.h"

namespace clouddns::capture {
namespace {

constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr std::uint16_t kEthertypeIpv4 = 0x0800;
constexpr std::uint16_t kEthertypeIpv6 = 0x86dd;
constexpr std::uint8_t kProtoTcp = 6;
constexpr std::uint8_t kProtoUdp = 17;

// The capture record does not retain the destination service address, so
// export uses fixed placeholder server addresses (documented as lossy).
const char* kServerV4 = "198.51.100.53";
const char* kServerV6 = "2001:db8:5353::53";

void PutLE16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void PutLE32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
void PutBE16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t Ipv4Checksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (len % 2) sum += static_cast<std::uint32_t>(data[len - 1] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

dns::WireBuffer QueryWire(const CaptureRecord& record) {
  std::optional<dns::EdnsInfo> edns;
  if (record.has_edns) {
    edns = dns::EdnsInfo{record.edns_udp_size, record.do_bit, 0};
  }
  // The original message id is not retained; derive a stable one.
  auto id = static_cast<std::uint16_t>(record.time_us ^ record.src_port);
  return dns::Message::MakeQuery(id, record.qname, record.qtype, edns)
      .Encode();
}

void AppendFrame(std::vector<std::uint8_t>& out, const CaptureRecord& record) {
  dns::WireBuffer dns_wire = QueryWire(record);
  // Every payload the capture writer embeds must be a conformant message;
  // a violation here means the re-encoder mangled the record.
  dns::audit::Audit(dns_wire, "capture::EncodePcap frame payload");

  // L4 payload (+2-byte length prefix over TCP, RFC 1035 §4.2.2).
  std::vector<std::uint8_t> l4;
  const bool tcp = record.transport == dns::Transport::kTcp;
  if (tcp) {
    // Minimal TCP header: 20 bytes, PSH|ACK.
    PutBE16(l4, record.src_port);
    PutBE16(l4, 53);
    for (int i = 0; i < 8; ++i) l4.push_back(0);  // seq + ack
    l4.push_back(0x50);                            // data offset 5
    l4.push_back(0x18);                            // PSH|ACK
    PutBE16(l4, 65535);                            // window
    PutBE16(l4, 0);                                // checksum (omitted)
    PutBE16(l4, 0);                                // urgent
    PutBE16(l4, static_cast<std::uint16_t>(dns_wire.size()));
    l4.insert(l4.end(), dns_wire.begin(), dns_wire.end());
  } else {
    PutBE16(l4, record.src_port);
    PutBE16(l4, 53);
    PutBE16(l4, static_cast<std::uint16_t>(8 + dns_wire.size()));
    PutBE16(l4, 0);  // checksum omitted
    l4.insert(l4.end(), dns_wire.begin(), dns_wire.end());
  }

  // IP header.
  std::vector<std::uint8_t> ip;
  const bool v4 = record.src.is_v4();
  if (v4) {
    ip.push_back(0x45);
    ip.push_back(0);
    PutBE16(ip, static_cast<std::uint16_t>(20 + l4.size()));
    PutBE16(ip, 0);      // id
    PutBE16(ip, 0x4000); // don't fragment
    ip.push_back(64);    // ttl
    ip.push_back(tcp ? kProtoTcp : kProtoUdp);
    PutBE16(ip, 0);      // checksum placeholder
    auto src = record.src.v4().ToBytes();
    ip.insert(ip.end(), src.begin(), src.end());
    auto dst = net::Ipv4Address::Parse(kServerV4)->ToBytes();
    ip.insert(ip.end(), dst.begin(), dst.end());
    std::uint16_t checksum = Ipv4Checksum(ip.data(), ip.size());
    ip[10] = static_cast<std::uint8_t>(checksum >> 8);
    ip[11] = static_cast<std::uint8_t>(checksum);
  } else {
    ip.push_back(0x60);
    ip.push_back(0);
    ip.push_back(0);
    ip.push_back(0);
    PutBE16(ip, static_cast<std::uint16_t>(l4.size()));
    ip.push_back(tcp ? kProtoTcp : kProtoUdp);
    ip.push_back(64);  // hop limit
    const auto& src = record.src.v6().bytes();
    ip.insert(ip.end(), src.begin(), src.end());
    // Copy, not reference: bytes() would dangle off the temporary optional.
    const auto dst = net::Ipv6Address::Parse(kServerV6)->bytes();
    ip.insert(ip.end(), dst.begin(), dst.end());
  }

  // Ethernet + pcap record header.
  std::vector<std::uint8_t> frame;
  for (int i = 0; i < 6; ++i) frame.push_back(0x02);  // dst MAC
  for (int i = 0; i < 6; ++i) frame.push_back(0x04);  // src MAC
  PutBE16(frame, v4 ? kEthertypeIpv4 : kEthertypeIpv6);
  frame.insert(frame.end(), ip.begin(), ip.end());
  frame.insert(frame.end(), l4.begin(), l4.end());

  PutLE32(out, static_cast<std::uint32_t>(record.time_us / 1'000'000));
  PutLE32(out, static_cast<std::uint32_t>(record.time_us % 1'000'000));
  PutLE32(out, static_cast<std::uint32_t>(frame.size()));
  PutLE32(out, static_cast<std::uint32_t>(frame.size()));
  out.insert(out.end(), frame.begin(), frame.end());
}

std::optional<std::uint32_t> GetLE32(const std::vector<std::uint8_t>& in,
                                     std::size_t& pos) {
  if (pos + 4 > in.size()) return std::nullopt;
  std::uint32_t v = in[pos] | (in[pos + 1] << 8) | (in[pos + 2] << 16) |
                    (static_cast<std::uint32_t>(in[pos + 3]) << 24);
  pos += 4;
  return v;
}

std::uint16_t GetBE16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

/// Parses one Ethernet frame into a capture record. Returns false for
/// anything that is not a DNS query to port 53.
bool ParseFrame(const std::uint8_t* frame, std::size_t len,
                sim::TimeUs time_us, CaptureRecord& out) {
  if (len < 14) return false;
  std::uint16_t ethertype = GetBE16(frame + 12);
  const std::uint8_t* ip = frame + 14;
  std::size_t ip_len = len - 14;

  std::uint8_t proto = 0;
  const std::uint8_t* l4 = nullptr;
  std::size_t l4_len = 0;
  net::IpAddress src;
  if (ethertype == kEthertypeIpv4) {
    if (ip_len < 20 || (ip[0] >> 4) != 4) return false;
    std::size_t ihl = static_cast<std::size_t>(ip[0] & 0xf) * 4;
    if (ip_len < ihl) return false;
    proto = ip[9];
    src = net::Ipv4Address::FromBytes({ip[12], ip[13], ip[14], ip[15]});
    l4 = ip + ihl;
    l4_len = ip_len - ihl;
  } else if (ethertype == kEthertypeIpv6) {
    if (ip_len < 40 || (ip[0] >> 4) != 6) return false;
    proto = ip[6];
    net::Ipv6Address::Bytes bytes;
    std::copy(ip + 8, ip + 24, bytes.begin());
    src = net::Ipv6Address(bytes);
    l4 = ip + 40;
    l4_len = ip_len - 40;
  } else {
    return false;
  }

  const std::uint8_t* dns_data = nullptr;
  std::size_t dns_len = 0;
  if (proto == kProtoUdp) {
    if (l4_len < 8) return false;
    if (GetBE16(l4 + 2) != 53) return false;  // not to the DNS port
    out.src_port = GetBE16(l4);
    out.transport = dns::Transport::kUdp;
    dns_data = l4 + 8;
    dns_len = l4_len - 8;
  } else if (proto == kProtoTcp) {
    if (l4_len < 20) return false;
    if (GetBE16(l4 + 2) != 53) return false;
    std::size_t header = static_cast<std::size_t>(l4[12] >> 4) * 4;
    if (l4_len < header + 2) return false;
    out.src_port = GetBE16(l4);
    out.transport = dns::Transport::kTcp;
    std::uint16_t framed = GetBE16(l4 + header);
    dns_data = l4 + header + 2;
    dns_len = std::min<std::size_t>(l4_len - header - 2, framed);
  } else {
    return false;
  }

  auto message = dns::Message::Decode(dns_data, dns_len);
  if (!message || message->header.qr || message->questions.empty()) {
    return false;
  }
  out.time_us = time_us;
  out.src = src;
  out.qname = message->questions.front().name;
  out.qtype = message->questions.front().type;
  out.has_edns = message->edns.has_value();
  out.edns_udp_size = message->edns ? message->edns->udp_payload_size : 0;
  out.do_bit = message->edns && message->edns->dnssec_ok;
  out.query_size = static_cast<std::uint16_t>(dns_len);
  return true;
}

}  // namespace

std::vector<std::uint8_t> EncodePcap(const CaptureBuffer& records) {
  std::vector<std::uint8_t> out;
  PutLE32(out, kPcapMagic);
  PutLE16(out, 2);      // version major
  PutLE16(out, 4);      // version minor
  PutLE32(out, 0);      // thiszone
  PutLE32(out, 0);      // sigfigs
  PutLE32(out, 65535);  // snaplen
  PutLE32(out, 1);      // LINKTYPE_ETHERNET
  for (const CaptureRecord& record : records) AppendFrame(out, record);
  return out;
}

std::optional<CaptureBuffer> DecodePcap(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  auto magic = GetLE32(bytes, pos);
  if (!magic || *magic != kPcapMagic) return std::nullopt;
  pos += 2 + 2 + 4 + 4 + 4;  // version..snaplen
  auto linktype = GetLE32(bytes, pos);
  if (!linktype || *linktype != 1) return std::nullopt;

  CaptureBuffer records;
  while (pos < bytes.size()) {
    auto ts_sec = GetLE32(bytes, pos);
    auto ts_usec = GetLE32(bytes, pos);
    auto incl_len = GetLE32(bytes, pos);
    auto orig_len = GetLE32(bytes, pos);
    if (!ts_sec || !ts_usec || !incl_len || !orig_len) break;
    if (pos + *incl_len > bytes.size()) break;
    CaptureRecord record;
    if (ParseFrame(bytes.data() + pos, *incl_len,
                   static_cast<sim::TimeUs>(*ts_sec) * 1'000'000 + *ts_usec,
                   record)) {
      records.push_back(std::move(record));
    }
    pos += *incl_len;
  }
  return records;
}

base::io::IoStatus WritePcapFileStatus(const std::string& path,
                                       const CaptureBuffer& records,
                                       bool framed) {
  std::vector<std::uint8_t> bytes = EncodePcap(records);
  if (framed) {
    return base::io::WriteFramedFile(path, base::io::kTagPcap, bytes);
  }
  return base::io::WriteFileAtomic(path, bytes);
}

bool WritePcapFile(const std::string& path, const CaptureBuffer& records) {
  return WritePcapFileStatus(path, records).ok();
}

base::io::IoStatus ReadPcapFileStatus(const std::string& path,
                                      CaptureBuffer& out) {
  std::vector<std::uint8_t> payload;
  bool framed = false;
  base::io::IoStatus status =
      base::io::ReadFramedFile(path, base::io::kTagPcap, payload, &framed);
  if (!status.ok()) return status;
  std::optional<CaptureBuffer> decoded = DecodePcap(payload);
  if (!decoded) {
    return base::io::IoStatus::Error(
        base::io::IoCode::kPayloadCorrupt,
        framed ? "pcap payload rejected inside an intact frame"
               : "raw pcap file rejected by the decoder");
  }
  out = std::move(*decoded);
  return base::io::IoStatus::Ok();
}

std::optional<CaptureBuffer> ReadPcapFile(const std::string& path) {
  CaptureBuffer records;
  if (!ReadPcapFileStatus(path, records).ok()) return std::nullopt;
  return records;
}

}  // namespace clouddns::capture
