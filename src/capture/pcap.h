// pcap interoperability.
//
// The study's raw inputs are pcap files captured at authoritative servers
// (ENTRADA ingests exactly that). This module writes a capture stream as a
// classic libpcap file — fabricating Ethernet/IPv4/IPv6/UDP/TCP headers
// around re-encoded DNS queries — and reads such files back, so traces
// interoperate with tcpdump/wireshark/ENTRADA-shaped tooling.
//
// Export writes the *query* packet of each capture record (that is what
// the vantage point's enrichment pipeline keys on); response-derived
// fields (rcode, TC, response size) ride in a trailing comment record of
// the columnar sidecar when needed — pcap round trips are therefore
// lossy by design and documented as such: time, addresses, transport,
// qname/qtype/EDNS survive; response metadata does not.
#pragma once

#include <optional>
#include <string>

#include "base/io.h"
#include "capture/record.h"

namespace clouddns::capture {

/// Serializes query packets as a libpcap (v2.4, LINKTYPE_ETHERNET) byte
/// stream.
[[nodiscard]] std::vector<std::uint8_t> EncodePcap(
    const CaptureBuffer& records);

/// Parses a libpcap byte stream produced by EncodePcap (or any capture of
/// UDP/TCP DNS queries over Ethernet). Non-DNS packets are skipped.
/// Returns nullopt on a malformed file header.
[[nodiscard]] std::optional<CaptureBuffer> DecodePcap(
    const std::vector<std::uint8_t>& bytes);

/// Atomic, checked pcap write. By default the libpcap bytes are wrapped
/// in the checksummed base::io frame (tag kTagPcap) — the simulator's own
/// artifacts get integrity protection. Pass `framed = false` for a raw
/// libpcap file that tcpdump/wireshark open directly (cdnstool
/// `export-pcap --raw`); raw files get atomicity but no checksums.
[[nodiscard]] base::io::IoStatus WritePcapFileStatus(
    const std::string& path, const CaptureBuffer& records, bool framed = true);

/// Reads either shape: framed files are verified then unwrapped, raw
/// libpcap files pass through as legacy payloads.
[[nodiscard]] base::io::IoStatus ReadPcapFileStatus(const std::string& path,
                                                    CaptureBuffer& out);

/// Untyped wrappers kept for callers that only need success/failure.
bool WritePcapFile(const std::string& path, const CaptureBuffer& records);
[[nodiscard]] std::optional<CaptureBuffer> ReadPcapFile(
    const std::string& path);

}  // namespace clouddns::capture
