#include "capture/columnar.h"
// lint:hot-path — on the per-query serve/capture path (DESIGN.md §10).

#include <cstdio>
#include <unordered_map>

#include "base/lifetime.h"
#include "base/phase.h"
#include "capture/varint.h"

namespace clouddns::capture {
namespace {

constexpr std::uint32_t kMagic = 0x43444e53;  // "CDNS"
constexpr std::uint32_t kVersion = 1;

enum ColumnId : std::uint8_t {
  kColTime = 0,
  kColServer = 1,
  kColSite = 2,
  kColSrcDict = 3,
  kColSrcIndex = 4,
  kColPort = 5,
  kColFlags = 6,  // transport | has_edns | do_bit | tc packed per record
  kColQnameDict = 7,
  kColQnameIndex = 8,
  kColQtype = 9,
  kColRcode = 10,
  kColEdnsSize = 11,
  kColQuerySize = 12,
  kColResponseSize = 13,
  kColTcpRtt = 14,
  kColumnCount = 15,
};

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::optional<std::uint32_t> GetU32(const std::vector<std::uint8_t>& in,
                                    std::size_t& pos) {
  if (pos + 4 > in.size()) return std::nullopt;
  std::uint32_t v = (static_cast<std::uint32_t>(in[pos]) << 24) |
                    (static_cast<std::uint32_t>(in[pos + 1]) << 16) |
                    (static_cast<std::uint32_t>(in[pos + 2]) << 8) |
                    static_cast<std::uint32_t>(in[pos + 3]);
  pos += 4;
  return v;
}

void PutAddress(std::vector<std::uint8_t>& out, const net::IpAddress& addr) {
  if (addr.is_v4()) {
    out.push_back(4);
    auto bytes = addr.v4().ToBytes();
    out.insert(out.end(), bytes.begin(), bytes.end());
  } else {
    out.push_back(6);
    const auto& bytes = addr.v6().bytes();
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
}

std::optional<net::IpAddress> GetAddress(const std::vector<std::uint8_t>& in,
                                         std::size_t& pos) {
  if (pos >= in.size()) return std::nullopt;
  std::uint8_t family = in[pos++];
  if (family == 4) {
    if (pos + 4 > in.size()) return std::nullopt;
    std::array<std::uint8_t, 4> bytes{in[pos], in[pos + 1], in[pos + 2],
                                      in[pos + 3]};
    pos += 4;
    return net::IpAddress(net::Ipv4Address::FromBytes(bytes));
  }
  if (family == 6) {
    if (pos + 16 > in.size()) return std::nullopt;
    net::Ipv6Address::Bytes bytes;
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(pos),
              in.begin() + static_cast<std::ptrdiff_t>(pos + 16),
              bytes.begin());
    pos += 16;
    return net::IpAddress(net::Ipv6Address(bytes));
  }
  return std::nullopt;
}

/// A borrowed view of one column's bytes with a read cursor. Decoding
/// walks raw pointers over the loaded file image instead of copying every
/// column into its own vector first.
struct Cursor {
  const std::uint8_t* p = nullptr;
  const std::uint8_t* end = nullptr;

  [[nodiscard]] bool empty() const { return p == end; }

  [[nodiscard]] std::optional<std::uint64_t> Varint() {
    std::uint64_t value = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
      if (p == end) return std::nullopt;
      std::uint8_t byte = *p++;
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
    return std::nullopt;
  }
};

std::optional<net::IpAddress> GetAddress(Cursor& c) {
  if (c.empty()) return std::nullopt;
  std::uint8_t family = *c.p++;
  if (family == 4) {
    if (c.end - c.p < 4) return std::nullopt;
    std::array<std::uint8_t, 4> bytes{c.p[0], c.p[1], c.p[2], c.p[3]};
    c.p += 4;
    return net::IpAddress(net::Ipv4Address::FromBytes(bytes));
  }
  if (family == 6) {
    if (c.end - c.p < 16) return std::nullopt;
    net::Ipv6Address::Bytes bytes;
    std::copy(c.p, c.p + 16, bytes.begin());
    c.p += 16;
    return net::IpAddress(net::Ipv6Address(bytes));
  }
  return std::nullopt;
}

/// Length-prefixed string as a borrowed view; no std::string is built.
/// The view borrows from the cursor's underlying block (DESIGN.md §11):
/// it must be consumed before the cursor's buffer is refilled.
std::optional<std::string_view> GetStringView(Cursor& c
                                                  CLOUDDNS_LIFETIMEBOUND) {
  auto len = c.Varint();
  if (!len || static_cast<std::uint64_t>(c.end - c.p) < *len) {
    return std::nullopt;
  }
  std::string_view view(reinterpret_cast<const char*>(c.p),
                        static_cast<std::size_t>(*len));
  c.p += *len;
  return view;
}

// lint:allow(hot-alloc): dictionary side table, one entry per distinct qname
void PutString(std::vector<std::uint8_t>& out, const std::string& s) {
  PutVarint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

// lint:allow(hot-alloc): row-wise legacy codec, off the columnar path.
std::optional<std::string> GetString(const std::vector<std::uint8_t>& in,
                                     std::size_t& pos) {
  auto len = GetVarint(in, pos);
  if (!len || pos + *len > in.size()) return std::nullopt;
  // lint:allow(hot-alloc): see above — legacy codec only.
  std::string s(in.begin() + static_cast<std::ptrdiff_t>(pos),
                in.begin() + static_cast<std::ptrdiff_t>(pos + *len));
  pos += *len;
  return s;
}

std::uint8_t PackFlags(const CaptureRecord& r) {
  std::uint8_t flags = 0;
  if (r.transport == dns::Transport::kTcp) flags |= 1;
  if (r.has_edns) flags |= 2;
  if (r.do_bit) flags |= 4;
  if (r.tc) flags |= 8;
  return flags;
}

void UnpackFlags(std::uint8_t flags, CaptureRecord& r) {
  r.transport = (flags & 1) ? dns::Transport::kTcp : dns::Transport::kUdp;
  r.has_edns = flags & 2;
  r.do_bit = flags & 4;
  r.tc = flags & 8;
}

}  // namespace

std::vector<std::uint8_t> EncodeColumnar(const CaptureBuffer& records) {
  base::ScopedPhaseTimer phase(base::Phase::kEncode);
  std::vector<std::uint8_t> columns[kColumnCount];

  // Dictionaries.
  std::unordered_map<net::IpAddress, std::uint64_t, net::IpAddressHash>
      src_dict;
  std::vector<const net::IpAddress*> src_order;
  // Keyed on the Name itself (cached hash, case-insensitive equality), so
  // building the dictionary never constructs a ToKey() string.
  std::unordered_map<dns::Name, std::uint64_t, dns::NameHash, dns::NameEqual>
      qname_dict;
  std::vector<const dns::Name*> qname_order;

  std::int64_t prev_time = 0;
  for (const CaptureRecord& r : records) {
    PutVarint(columns[kColTime],
              ZigzagEncode(static_cast<std::int64_t>(r.time_us) - prev_time));
    prev_time = static_cast<std::int64_t>(r.time_us);
    PutVarint(columns[kColServer], r.server_id);
    PutVarint(columns[kColSite], r.site_id);

    auto [src_it, src_new] = src_dict.try_emplace(r.src, src_dict.size());
    if (src_new) src_order.push_back(&src_it->first);
    PutVarint(columns[kColSrcIndex], src_it->second);

    PutVarint(columns[kColPort], r.src_port);
    columns[kColFlags].push_back(PackFlags(r));

    auto [q_it, q_new] = qname_dict.try_emplace(r.qname, qname_dict.size());
    if (q_new) qname_order.push_back(&r.qname);
    PutVarint(columns[kColQnameIndex], q_it->second);

    PutVarint(columns[kColQtype], static_cast<std::uint16_t>(r.qtype));
    PutVarint(columns[kColRcode], static_cast<std::uint8_t>(r.rcode));
    PutVarint(columns[kColEdnsSize], r.edns_udp_size);
    PutVarint(columns[kColQuerySize], r.query_size);
    PutVarint(columns[kColResponseSize], r.response_size);
    PutVarint(columns[kColTcpRtt], r.tcp_handshake_rtt_us);
  }

  PutVarint(columns[kColSrcDict], src_order.size());
  for (const auto* addr : src_order) PutAddress(columns[kColSrcDict], *addr);
  PutVarint(columns[kColQnameDict], qname_order.size());
  for (const auto* name : qname_order) {
    // lint:allow(hot-alloc): rendered once per distinct qname (dict insert)
    PutString(columns[kColQnameDict], name->ToString());
  }

  std::vector<std::uint8_t> out;
  PutU32(out, kMagic);
  PutU32(out, kVersion);
  PutVarint(out, records.size());
  for (std::uint8_t id = 0; id < kColumnCount; ++id) {
    out.push_back(id);
    PutVarint(out, columns[id].size());
    out.insert(out.end(), columns[id].begin(), columns[id].end());
  }
  return out;
}

std::optional<CaptureBuffer> DecodeColumnar(
    const std::vector<std::uint8_t>& bytes) {
  base::ScopedPhaseTimer phase(base::Phase::kEncode);
  std::size_t pos = 0;
  auto magic = GetU32(bytes, pos);
  auto version = GetU32(bytes, pos);
  if (!magic || *magic != kMagic || !version || *version != kVersion) {
    return std::nullopt;
  }
  auto count = GetVarint(bytes, pos);
  if (!count) return std::nullopt;

  Cursor columns[kColumnCount];
  bool seen[kColumnCount] = {};
  while (pos < bytes.size()) {
    std::uint8_t id = bytes[pos++];
    auto len = GetVarint(bytes, pos);
    if (!len || pos + *len > bytes.size()) return std::nullopt;
    if (id >= kColumnCount || seen[id]) return std::nullopt;
    seen[id] = true;
    columns[id] = Cursor{bytes.data() + pos, bytes.data() + pos + *len};
    pos += *len;
  }
  for (bool s : seen) {
    if (!s) return std::nullopt;
  }

  // Dictionaries first.
  std::vector<net::IpAddress> src_dict;
  {
    Cursor& c = columns[kColSrcDict];
    auto n = c.Varint();
    if (!n) return std::nullopt;
    src_dict.reserve(*n);
    for (std::uint64_t i = 0; i < *n; ++i) {
      auto addr = GetAddress(c);
      if (!addr) return std::nullopt;
      src_dict.push_back(*addr);
    }
  }
  std::vector<dns::Name> qname_dict;
  {
    Cursor& c = columns[kColQnameDict];
    auto n = c.Varint();
    if (!n) return std::nullopt;
    qname_dict.reserve(*n);
    for (std::uint64_t i = 0; i < *n; ++i) {
      auto text = GetStringView(c);
      if (!text) return std::nullopt;
      auto name = dns::Name::Parse(*text);
      if (!name) return std::nullopt;
      qname_dict.push_back(std::move(*name));
    }
  }

  CaptureBuffer records;
  records.reserve(*count);
  std::int64_t prev_time = 0;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto time_delta = columns[kColTime].Varint();
    auto server = columns[kColServer].Varint();
    auto site = columns[kColSite].Varint();
    auto src_index = columns[kColSrcIndex].Varint();
    auto port = columns[kColPort].Varint();
    auto qname_index = columns[kColQnameIndex].Varint();
    auto qtype = columns[kColQtype].Varint();
    auto rcode = columns[kColRcode].Varint();
    auto edns = columns[kColEdnsSize].Varint();
    auto qsize = columns[kColQuerySize].Varint();
    auto rsize = columns[kColResponseSize].Varint();
    auto rtt = columns[kColTcpRtt].Varint();
    if (!time_delta || !server || !site || !src_index || !port ||
        !qname_index || !qtype || !rcode || !edns || !qsize || !rsize ||
        !rtt) {
      return std::nullopt;
    }
    if (columns[kColFlags].empty()) return std::nullopt;
    if (*src_index >= src_dict.size() || *qname_index >= qname_dict.size()) {
      return std::nullopt;
    }

    CaptureRecord& r = records.emplace_back();
    prev_time += ZigzagDecode(*time_delta);
    r.time_us = static_cast<sim::TimeUs>(prev_time);
    r.server_id = static_cast<std::uint32_t>(*server);
    r.site_id = static_cast<std::uint32_t>(*site);
    r.src = src_dict[*src_index];
    r.src_port = static_cast<std::uint16_t>(*port);
    UnpackFlags(*columns[kColFlags].p++, r);
    r.qname = qname_dict[*qname_index];
    r.qtype = static_cast<dns::RrType>(*qtype);
    r.rcode = static_cast<dns::Rcode>(*rcode);
    r.edns_udp_size = static_cast<std::uint16_t>(*edns);
    r.query_size = static_cast<std::uint16_t>(*qsize);
    r.response_size = static_cast<std::uint16_t>(*rsize);
    r.tcp_handshake_rtt_us = static_cast<std::uint32_t>(*rtt);
  }
  return records;
}

std::vector<std::uint8_t> EncodeRowWise(const CaptureBuffer& records) {
  std::vector<std::uint8_t> out;
  PutU32(out, kMagic);
  PutU32(out, kVersion + 0x100);  // distinct row-wise version tag
  PutVarint(out, records.size());
  for (const CaptureRecord& r : records) {
    PutVarint(out, r.time_us);
    PutVarint(out, r.server_id);
    PutVarint(out, r.site_id);
    PutAddress(out, r.src);
    PutVarint(out, r.src_port);
    out.push_back(PackFlags(r));
    // lint:allow(hot-alloc): row-wise legacy codec, off the hot path.
    PutString(out, r.qname.ToString());
    PutVarint(out, static_cast<std::uint16_t>(r.qtype));
    PutVarint(out, static_cast<std::uint8_t>(r.rcode));
    PutVarint(out, r.edns_udp_size);
    PutVarint(out, r.query_size);
    PutVarint(out, r.response_size);
    PutVarint(out, r.tcp_handshake_rtt_us);
  }
  return out;
}

std::optional<CaptureBuffer> DecodeRowWise(
    const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  auto magic = GetU32(bytes, pos);
  auto version = GetU32(bytes, pos);
  if (!magic || *magic != kMagic || !version || *version != kVersion + 0x100) {
    return std::nullopt;
  }
  auto count = GetVarint(bytes, pos);
  if (!count) return std::nullopt;
  CaptureBuffer records;
  records.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    CaptureRecord r;
    auto time = GetVarint(bytes, pos);
    auto server = GetVarint(bytes, pos);
    auto site = GetVarint(bytes, pos);
    if (!time || !server || !site) return std::nullopt;
    auto src = GetAddress(bytes, pos);
    auto port = GetVarint(bytes, pos);
    if (!src || !port || pos >= bytes.size()) return std::nullopt;
    std::uint8_t flags = bytes[pos++];
    auto qname_text = GetString(bytes, pos);
    if (!qname_text) return std::nullopt;
    auto qname = dns::Name::Parse(*qname_text);
    if (!qname) return std::nullopt;
    auto qtype = GetVarint(bytes, pos);
    auto rcode = GetVarint(bytes, pos);
    auto edns = GetVarint(bytes, pos);
    auto qsize = GetVarint(bytes, pos);
    auto rsize = GetVarint(bytes, pos);
    auto rtt = GetVarint(bytes, pos);
    if (!qtype || !rcode || !edns || !qsize || !rsize || !rtt) {
      return std::nullopt;
    }
    r.time_us = *time;
    r.server_id = static_cast<std::uint32_t>(*server);
    r.site_id = static_cast<std::uint32_t>(*site);
    r.src = *src;
    r.src_port = static_cast<std::uint16_t>(*port);
    UnpackFlags(flags, r);
    r.qname = std::move(*qname);
    r.qtype = static_cast<dns::RrType>(*qtype);
    r.rcode = static_cast<dns::Rcode>(*rcode);
    r.edns_udp_size = static_cast<std::uint16_t>(*edns);
    r.query_size = static_cast<std::uint16_t>(*qsize);
    r.response_size = static_cast<std::uint16_t>(*rsize);
    r.tcp_handshake_rtt_us = static_cast<std::uint32_t>(*rtt);
    records.push_back(std::move(r));
  }
  return records;
}

// lint:allow(hot-alloc): file path, once per capture file.
base::io::IoStatus WriteCaptureFileStatus(const std::string& path,
                                          const CaptureBuffer& records) {
  return base::io::WriteFramedFile(path, base::io::kTagCapture,
                                   EncodeColumnar(records));
}

// lint:allow(hot-alloc): file path, once per capture file.
bool WriteCaptureFile(const std::string& path, const CaptureBuffer& records) {
  return WriteCaptureFileStatus(path, records).ok();
}

// lint:allow(hot-alloc): file path, once per capture file.
base::io::IoStatus ReadCaptureFileStatus(const std::string& path,
                                         CaptureBuffer& out) {
  std::vector<std::uint8_t> payload;
  bool framed = false;
  base::io::IoStatus status =
      base::io::ReadFramedFile(path, base::io::kTagCapture, payload, &framed);
  if (!status.ok()) return status;
  std::optional<CaptureBuffer> decoded = DecodeColumnar(payload);
  if (!decoded) {
    return base::io::IoStatus::Error(
        base::io::IoCode::kPayloadCorrupt,
        framed ? "columnar payload rejected inside an intact frame"
               : "legacy unframed columnar file rejected by the decoder");
  }
  out = std::move(*decoded);
  return base::io::IoStatus::Ok();
}

// lint:allow(hot-alloc): file path, once per capture file.
std::optional<CaptureBuffer> ReadCaptureFile(const std::string& path) {
  CaptureBuffer records;
  if (!ReadCaptureFileStatus(path, records).ok()) return std::nullopt;
  return records;
}

}  // namespace clouddns::capture
