// Prefix-preserving source-address anonymization (Crypto-PAn style).
//
// ENTRADA deployments must strip personal data before retaining traces;
// the standard approach keeps analyses working by preserving prefix
// structure: two addresses share an n-bit prefix after anonymization iff
// they shared an n-bit prefix before. Longest-prefix-match enrichment
// (AS attribution) then still groups the same sources together after the
// routing table itself is mapped through the same anonymizer.
#pragma once

#include <cstdint>

#include "capture/record.h"

namespace clouddns::capture {

class Anonymizer {
 public:
  /// Deterministic for a given key; different keys give unrelated mappings.
  explicit Anonymizer(std::uint64_t key) : key_(key) {}

  /// Prefix-preserving one-to-one mapping within each address family.
  [[nodiscard]] net::IpAddress Anonymize(const net::IpAddress& address) const;

  /// Copies `records` with every source address anonymized.
  [[nodiscard]] CaptureBuffer AnonymizeCapture(
      const CaptureBuffer& records) const;

 private:
  [[nodiscard]] bool FlipBit(std::uint64_t prefix_hash) const;

  std::uint64_t key_;
};

}  // namespace clouddns::capture
